#include "phy/ber.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "util/math.hpp"
#include "util/units.hpp"

namespace braidio::phy {
namespace {

constexpr BerModel kAllModels[] = {
    BerModel::CoherentBpsk, BerModel::CoherentFsk, BerModel::NoncoherentFsk,
    BerModel::NoncoherentOok};

TEST(Ber, ZeroSnrIsCoinFlip) {
  EXPECT_NEAR(bit_error_rate(BerModel::CoherentBpsk, 0.0), 0.5, 1e-9);
  EXPECT_NEAR(bit_error_rate(BerModel::CoherentFsk, 0.0), 0.5, 1e-9);
  EXPECT_NEAR(bit_error_rate(BerModel::NoncoherentFsk, 0.0), 0.5, 1e-9);
  // OOK with a threshold at A/2 = 0 reads every "0" as "1": Pfa = 1,
  // Pmiss = 0 -> Pb = 0.5.
  EXPECT_NEAR(bit_error_rate(BerModel::NoncoherentOok, 0.0), 0.5, 1e-9);
}

TEST(Ber, KnownTextbookValues) {
  // BPSK at 9.6 dB -> ~1e-5; coherent FSK needs 3 dB more for the same Pb.
  const double g = util::db_to_linear(9.6);
  EXPECT_NEAR(bit_error_rate(BerModel::CoherentBpsk, g), 1.03e-5, 3e-6);
  EXPECT_NEAR(bit_error_rate(BerModel::CoherentFsk, 2.0 * g),
              bit_error_rate(BerModel::CoherentBpsk, g), 1e-9);
  // Noncoherent FSK closed form.
  EXPECT_DOUBLE_EQ(bit_error_rate(BerModel::NoncoherentFsk, 10.0),
                   0.5 * std::exp(-5.0));
}

TEST(Ber, ModelOrderingAtModerateSnr) {
  // Detection efficiency: BPSK < coherent FSK < noncoherent FSK < OOK
  // envelope (higher Pb = less efficient) at the same per-bit SNR.
  const double g = util::db_to_linear(10.0);
  const double bpsk = bit_error_rate(BerModel::CoherentBpsk, g);
  const double cfsk = bit_error_rate(BerModel::CoherentFsk, g);
  const double nfsk = bit_error_rate(BerModel::NoncoherentFsk, g);
  const double ook = bit_error_rate(BerModel::NoncoherentOok, g);
  EXPECT_LT(bpsk, cfsk);
  EXPECT_LT(cfsk, nfsk);
  EXPECT_LT(nfsk, ook);
}

TEST(Ber, RejectsNegativeSnr) {
  for (auto model : kAllModels) {
    EXPECT_THROW(bit_error_rate(model, -0.1), std::domain_error);
  }
}

class BerMonotonic : public ::testing::TestWithParam<BerModel> {};

TEST_P(BerMonotonic, DecreasesWithSnr) {
  const auto model = GetParam();
  double prev = 0.6;
  for (double db = -10.0; db <= 20.0; db += 1.0) {
    const double p = bit_error_rate(model, util::db_to_linear(db));
    EXPECT_LE(p, prev + 1e-12) << "at " << db << " dB";
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 0.5 + 1e-9);
    prev = p;
  }
}

TEST_P(BerMonotonic, RequiredSnrInverts) {
  const auto model = GetParam();
  for (double target : {0.1, 0.01, 1e-3, 1e-4}) {
    const double g = required_snr(model, target);
    EXPECT_NEAR(bit_error_rate(model, g) / target, 1.0, 1e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, BerMonotonic,
                         ::testing::ValuesIn(kAllModels));

TEST(RequiredSnr, OrderingMatchesEfficiency) {
  // To reach the Fig. 13 threshold (1e-2), envelope OOK needs more SNR
  // than the coherent schemes — the sensitivity price of the passive
  // receiver (Table 3).
  const double t = 0.01;
  EXPECT_LT(required_snr_db(BerModel::CoherentBpsk, t),
            required_snr_db(BerModel::CoherentFsk, t));
  EXPECT_LT(required_snr_db(BerModel::CoherentFsk, t),
            required_snr_db(BerModel::NoncoherentOok, t));
}

TEST(RequiredSnr, ValidatesTarget) {
  EXPECT_THROW(required_snr(BerModel::CoherentBpsk, 0.0), std::domain_error);
  EXPECT_THROW(required_snr(BerModel::CoherentBpsk, 0.5), std::domain_error);
  EXPECT_THROW(required_snr(BerModel::CoherentBpsk, 1.0), std::domain_error);
}

TEST(PacketErrorRate, MatchesIndependentBitModel) {
  EXPECT_DOUBLE_EQ(packet_error_rate(0.0, 1000), 0.0);
  EXPECT_NEAR(packet_error_rate(1e-3, 1000),
              1.0 - std::pow(1.0 - 1e-3, 1000.0), 1e-12);
  EXPECT_NEAR(packet_error_rate(0.5, 1), 0.5, 1e-12);
  // Stable for tiny BER: ~ bits * ber.
  EXPECT_NEAR(packet_error_rate(1e-12, 100), 1e-10, 1e-14);
  EXPECT_THROW(packet_error_rate(-0.1, 10), std::domain_error);
  EXPECT_THROW(packet_error_rate(1.1, 10), std::domain_error);
}

TEST(NoncoherentOok, MatchesManualMarcumComposition) {
  for (double db : {6.0, 10.0, 14.0}) {
    const double g = util::db_to_linear(db);
    const double pfa = std::exp(-g / 4.0);
    const double pmiss = 1.0 - util::marcum_q1(std::sqrt(2.0 * g),
                                               std::sqrt(g / 2.0));
    EXPECT_DOUBLE_EQ(bit_error_rate(BerModel::NoncoherentOok, g),
                     0.5 * (pfa + pmiss));
  }
}

}  // namespace
}  // namespace braidio::phy
