// Deadline-aware carrier offload: Eq. 1 + a minimum-throughput constraint.
#include <gtest/gtest.h>

#include "core/offload.hpp"
#include "core/regimes.hpp"

namespace braidio::core {
namespace {

class DeadlineTest : public ::testing::Test {
 protected:
  std::vector<ModeCandidate> at(double d) {
    return map_.available_best_rate(d);
  }
  PowerTable table_;
  phy::LinkBudget budget_;
  RegimeMap map_{table_, budget_};
};

TEST_F(DeadlineTest, ThroughputHelperMatchesMixArithmetic) {
  const auto candidates = at(0.5);  // all at 1 Mbps
  const auto plan = OffloadPlanner::plan(candidates, 1.0, 1.0);
  EXPECT_NEAR(plan_throughput_bps(plan), 1e6, 1.0);
  OffloadPlan empty;
  EXPECT_DOUBLE_EQ(plan_throughput_bps(empty), 0.0);
}

TEST_F(DeadlineTest, UnconstrainedOptimumReturnedWhenFastEnough) {
  const auto candidates = at(0.5);
  const auto base = OffloadPlanner::plan(candidates, 3.0, 1.0);
  const auto dl = OffloadPlanner::plan_with_min_throughput(candidates, 3.0,
                                                           1.0, 0.5e6);
  EXPECT_TRUE(dl.meets_throughput);
  EXPECT_NEAR(dl.total_joules_per_bit(), base.total_joules_per_bit(),
              1e-15);
}

// A candidate set with a real energy/throughput tension: a cheap but
// crawling braid (Y+Z at 10 kbps-dominated airtime) against an expensive
// fast symmetric mode (X at 1 Mbps).
std::vector<ModeCandidate> tension_candidates() {
  return {
      // X: symmetric 1 Mbps, 100 nJ/bit per end.
      {phy::LinkMode::Active, phy::Bitrate::M1, 0.1, 0.1},
      // Y: cheap 10 kbps point favoring the transmitter (5/20 nJ).
      {phy::LinkMode::Backscatter, phy::Bitrate::k10, 5e-5, 2e-4},
      // Z: 1 Mbps point favoring the receiver (200/50 nJ).
      {phy::LinkMode::PassiveRx, phy::Bitrate::M1, 0.2, 0.05},
  };
}

TEST_F(DeadlineTest, DeadlineBuysThroughputWithEnergy) {
  const auto candidates = tension_candidates();
  const auto lazy = OffloadPlanner::plan(candidates, 1.0, 1.0);
  // Energy-optimal: the Y+Z braid at ~45 nJ total, crawling at ~11 kbps.
  ASSERT_TRUE(lazy.proportional);
  EXPECT_NEAR(lazy.total_joules_per_bit() * 1e9, 45.5, 1.0);
  ASSERT_LT(plan_throughput_bps(lazy), 20e3);

  const auto fast = OffloadPlanner::plan_with_min_throughput(
      candidates, 1.0, 1.0, 100e3);
  ASSERT_TRUE(fast.meets_throughput);
  EXPECT_TRUE(fast.proportional);
  EXPECT_GE(plan_throughput_bps(fast), 100e3 * (1.0 - 1e-6));
  // Still exactly power-proportional...
  EXPECT_NEAR(fast.achieved_ratio(), 1.0, 1e-6);
  // ...more expensive than the lazy optimum, but cheaper than buying the
  // fast mode outright.
  EXPECT_GT(fast.total_joules_per_bit(), lazy.total_joules_per_bit());
  EXPECT_LT(fast.total_joules_per_bit(), 200e-9 * (1.0 + 1e-9));
}

TEST_F(DeadlineTest, TightnessIsMonotoneInTheDeadline) {
  double prev_cost = 0.0;
  for (double bps : {5e3, 50e3, 200e3, 800e3}) {
    const auto plan = OffloadPlanner::plan_with_min_throughput(
        tension_candidates(), 1.0, 1.0, bps);
    if (!plan.meets_throughput) break;
    EXPECT_GE(plan.total_joules_per_bit(), prev_cost - 1e-18)
        << bps;
    prev_cost = plan.total_joules_per_bit();
  }
}

TEST_F(DeadlineTest, ImpossibleDeadlineReturnsFastestProportionalPlan) {
  const auto candidates = at(2.0);  // max rate 1 Mbps
  const auto plan = OffloadPlanner::plan_with_min_throughput(
      candidates, 1.0, 1.0, 5e6);
  EXPECT_FALSE(plan.meets_throughput);
  EXPECT_TRUE(plan.proportional);
  // It should still be the fastest achievable proportional mix.
  const auto lazy = OffloadPlanner::plan(candidates, 1.0, 1.0);
  EXPECT_GE(plan_throughput_bps(plan),
            plan_throughput_bps(lazy) * (1.0 - 1e-9));
}

TEST_F(DeadlineTest, TripleMixesAppearWhenNeeded) {
  // A tight deadline + exact proportionality generally needs all three
  // basic variables (the 3-equality LP corner).
  const auto candidates = tension_candidates();
  const auto plan = OffloadPlanner::plan_with_min_throughput(
      candidates, 1.0, 1.0, 100e3);
  ASSERT_TRUE(plan.meets_throughput);
  EXPECT_EQ(plan.entries.size(), 3u);
  double frac = 0.0;
  for (const auto& e : plan.entries) frac += e.fraction;
  EXPECT_NEAR(frac, 1.0, 1e-9);
  // Analytic corner check: p_Y = 0.0909, p_Z = p_Y / 10, rest on X.
  for (const auto& e : plan.entries) {
    if (e.candidate.rate == phy::Bitrate::k10) {
      EXPECT_NEAR(e.fraction, 0.0909, 0.001);
    }
  }
}

TEST_F(DeadlineTest, Validation) {
  const auto candidates = at(0.5);
  EXPECT_THROW(OffloadPlanner::plan_with_min_throughput(candidates, 1.0,
                                                        1.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(OffloadPlanner::plan_with_min_throughput({}, 1.0, 1.0, 1e5),
               std::invalid_argument);
}

}  // namespace
}  // namespace braidio::core
