#include <cmath>
#include <complex>

#include <gtest/gtest.h>

#include "rf/antenna.hpp"
#include "rf/constants.hpp"
#include "rf/fading.hpp"
#include "rf/geometry.hpp"
#include "rf/noise.hpp"
#include "rf/saw_filter.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace braidio::rf {
namespace {

TEST(Geometry, VectorAlgebra) {
  const Vec2 a{1.0, 2.0}, b{4.0, 6.0};
  EXPECT_DOUBLE_EQ(distance(a, b), 5.0);
  EXPECT_EQ(a + b, (Vec2{5.0, 8.0}));
  EXPECT_EQ(b - a, (Vec2{3.0, 4.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  const Vec2 dir = direction(a, b);
  EXPECT_NEAR(dir.norm(), 1.0, 1e-12);
  EXPECT_THROW(direction(a, a), std::invalid_argument);
}

TEST(Antenna, AmplitudeGainIsSqrtOfPowerGain) {
  Antenna ant{{0.0, 0.0}, 6.0};
  EXPECT_NEAR(ant.amplitude_gain() * ant.amplitude_gain(),
              util::db_to_linear(6.0), 1e-9);
}

TEST(Antenna, DiversityPairSpacing) {
  const double lambda = util::wavelength_m(kCarrierFrequencyHz);
  const auto pair = make_diversity_pair({1.0, 0.5}, lambda / 8.0);
  ASSERT_EQ(pair.size(), 2u);
  EXPECT_NEAR(distance(pair[0].position, pair[1].position), lambda / 8.0,
              1e-12);
  // Centered on the requested point.
  EXPECT_NEAR((pair[0].position.x + pair[1].position.x) / 2.0, 1.0, 1e-12);
  EXPECT_THROW(make_diversity_pair({0, 0}, 0.0), std::invalid_argument);
}

TEST(Noise, ThermalPlusNoiseFigure) {
  NoiseModel model;
  model.noise_figure_db = 6.0;
  const double n = model.noise_watts(1e6);
  // -114 dBm + 6 dB NF ~= -108 dBm.
  EXPECT_NEAR(util::watts_to_dbm(n), -108.0, 0.2);
}

TEST(Noise, ImplementationFloorDominatesWhenHigher) {
  NoiseModel model;
  model.floor_dbm = -60.0;
  EXPECT_NEAR(util::watts_to_dbm(model.noise_watts(1e6)), -60.0, 1e-9);
  // Narrow bandwidth cannot go below the floor.
  EXPECT_NEAR(util::watts_to_dbm(model.noise_watts(10.0)), -60.0, 1e-9);
}

TEST(Noise, SnrComputation) {
  NoiseModel model;
  model.floor_dbm = -70.0;
  const double sig = util::dbm_to_watts(-50.0);
  EXPECT_NEAR(model.snr_db(sig, 1e6), 20.0, 1e-6);
  EXPECT_THROW(model.snr(-1.0, 1e6), std::domain_error);
  EXPECT_THROW(model.noise_watts(-5.0), std::domain_error);
}

TEST(Fading, RayleighPowerGainUnitMean) {
  util::Rng rng(5);
  double sum = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rayleigh_power_gain(rng);
  EXPECT_NEAR(sum / n, 1.0, 0.02);
}

TEST(Fading, RicianUnitMeanAndKBehaviour) {
  util::Rng rng(7);
  const int n = 200'000;
  for (double k : {0.0, 1.0, 10.0}) {
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < n; ++i) {
      const double g = rician_power_gain(rng, k);
      sum += g;
      sq += g * g;
    }
    const double mean = sum / n;
    EXPECT_NEAR(mean, 1.0, 0.03) << "K=" << k;
    // Larger K concentrates the distribution.
    if (k == 10.0) {
      const double var = sq / n - mean * mean;
      EXPECT_LT(var, 0.25);
    }
  }
  EXPECT_THROW(rician_power_gain(rng, -1.0), std::domain_error);
}

TEST(Fading, CoherentProcessCorrelationDecay) {
  // With sample interval equal to the coherence time, rho = e^-1.
  CoherentChannelProcess p(1e-3, 1e-3, {1.0, 0.0}, 0.1, util::Rng(11));
  EXPECT_NEAR(p.rho(), std::exp(-1.0), 1e-12);
  // Much faster sampling keeps the channel nearly static step to step.
  CoherentChannelProcess fast(1e-3, 1e-6, {1.0, 0.0}, 0.1, util::Rng(13));
  const auto before = fast.current();
  const auto after = fast.step();
  EXPECT_LT(std::abs(after - before), 0.05);
  EXPECT_THROW(
      CoherentChannelProcess(0.0, 1e-6, {0, 0}, 0.1, util::Rng(1)),
      std::domain_error);
}

TEST(Fading, CoherentProcessStationaryVariance) {
  CoherentChannelProcess p(1e-3, 1e-4, {0.0, 0.0}, 0.5, util::Rng(17));
  double sq = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sq += std::norm(p.step());
  // Stationary variance of the scatter component is stddev^2.
  EXPECT_NEAR(sq / n, 0.25, 0.03);
}

TEST(SawFilter, PassbandInsertionLossOnly) {
  SawFilter filter;
  EXPECT_TRUE(filter.in_band(915e6));
  EXPECT_NEAR(filter.attenuation_db(915e6), 1.5, 1e-9);
  EXPECT_NEAR(filter.power_gain(915e6), util::db_to_linear(-1.5), 1e-12);
}

TEST(SawFilter, DatasheetSuppressionPoints) {
  SawFilter filter;
  // SF2049E: 50 dB at the 800 MHz band, >30 dB at 2.4 GHz (Table 4).
  EXPECT_NEAR(filter.attenuation_db(850e6), 50.0, 1e-9);
  EXPECT_NEAR(filter.attenuation_db(2.45e9), 30.0, 1e-9);
}

TEST(SawFilter, SkirtsInterpolate) {
  SawFilter filter;
  // 5 MHz beyond the upper band edge: halfway up the default skirt.
  const double att = filter.attenuation_db(933e6);
  EXPECT_GT(att, 1.5);
  EXPECT_LT(att, 35.0);
  // Monotone along the skirt.
  EXPECT_LT(filter.attenuation_db(930e6), filter.attenuation_db(936e6));
}

TEST(SawFilter, RejectsBadConfig) {
  SawFilterSpec bad;
  bad.passband_low_hz = 928e6;
  bad.passband_high_hz = 902e6;
  EXPECT_THROW(SawFilter{bad}, std::invalid_argument);
  SawFilter filter;
  EXPECT_THROW(filter.attenuation_db(0.0), std::domain_error);
}

TEST(SawFilter, WhyBraidioNeedsIt) {
  // Sec. 3.2: the envelope detector is not frequency selective; the SAW is
  // what knocks a 2.4 GHz WiFi interferer 30 dB down while costing only
  // 1.5 dB in band. Net selectivity benefit must exceed 25 dB.
  SawFilter filter;
  const double selectivity =
      filter.attenuation_db(2.45e9) - filter.attenuation_db(915e6);
  EXPECT_GT(selectivity, 25.0);
}

}  // namespace
}  // namespace braidio::rf
