// Cross-cutting randomized invariants over the whole stack.
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/lifetime_sim.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace braidio {
namespace {

using JL = util::Joules;

class PropertyTest : public ::testing::Test {
 protected:
  core::PowerTable table_;
  phy::LinkBudget budget_;
  core::LifetimeSimulator sim_{table_, budget_};
};

TEST_F(PropertyTest, BraidioNeverLosesToItsOwnModes) {
  // The braid dominates every exclusive mode (it can always degenerate to
  // one), across random energies and distances.
  util::Rng rng(0xB1AD);
  for (int trial = 0; trial < 300; ++trial) {
    core::LifetimeConfig cfg;
    cfg.distance_m = rng.uniform(0.2, 5.0);
    cfg.include_switch_overhead = false;
    const double e1 = rng.uniform(100.0, 1e6);
    const double e2 = rng.uniform(100.0, 1e6);
    const double braid = sim_.braidio(JL(e1), JL(e2), cfg).bits;
    const double best = sim_.best_single_mode_bits(JL(e1), JL(e2), cfg);
    EXPECT_GE(braid, best * (1.0 - 1e-9))
        << "d=" << cfg.distance_m << " e1=" << e1 << " e2=" << e2;
  }
}

TEST_F(PropertyTest, BraidioNeverLosesToBluetooth) {
  util::Rng rng(0xB1AE);
  for (int trial = 0; trial < 300; ++trial) {
    core::LifetimeConfig cfg;
    cfg.distance_m = rng.uniform(0.2, 5.8);
    cfg.bidirectional = rng.bernoulli(0.5);
    const double e1 = rng.uniform(100.0, 1e6);
    const double e2 = rng.uniform(100.0, 1e6);
    const double braid = sim_.braidio(JL(e1), JL(e2), cfg).bits;
    const double bt = sim_.bluetooth_bits(JL(e1), JL(e2), cfg.bidirectional);
    EXPECT_GE(braid, bt * (1.0 - 1e-9))
        << "d=" << cfg.distance_m << " bidir=" << cfg.bidirectional;
  }
}

TEST_F(PropertyTest, MoreEnergyNeverMeansFewerBits) {
  // Monotonicity: growing either battery cannot reduce the braid's total.
  util::Rng rng(0xB1AF);
  for (int trial = 0; trial < 200; ++trial) {
    core::LifetimeConfig cfg;
    cfg.distance_m = rng.uniform(0.2, 5.0);
    const double e1 = rng.uniform(100.0, 1e5);
    const double e2 = rng.uniform(100.0, 1e5);
    const double base = sim_.braidio(JL(e1), JL(e2), cfg).bits;
    EXPECT_GE(sim_.braidio(JL(e1 * 1.5), JL(e2), cfg).bits,
              base * (1.0 - 1e-9));
    EXPECT_GE(sim_.braidio(JL(e1), JL(e2 * 1.5), cfg).bits,
              base * (1.0 - 1e-9));
  }
}

TEST_F(PropertyTest, ScaleInvarianceOfGains) {
  // Gains depend only on the energy *ratio*: scaling both batteries by a
  // common factor leaves every gain unchanged.
  util::Rng rng(0xB1B0);
  core::LifetimeConfig cfg;
  cfg.distance_m = 0.6;
  for (int trial = 0; trial < 100; ++trial) {
    const double e1 = rng.uniform(100.0, 1e5);
    const double e2 = rng.uniform(100.0, 1e5);
    const double s = rng.uniform(2.0, 50.0);
    const double g1 = sim_.braidio(JL(e1), JL(e2), cfg).bits /
                      sim_.bluetooth_bits(JL(e1), JL(e2), false);
    const double g2 = sim_.braidio(JL(s * e1), JL(s * e2), cfg).bits /
                      sim_.bluetooth_bits(JL(s * e1), JL(s * e2), false);
    EXPECT_NEAR(g1 / g2, 1.0, 1e-6);
  }
}

TEST_F(PropertyTest, BitsNeverExceedTheEnergyBound) {
  // No plan can move more bits than either battery divided by the
  // cheapest conceivable per-bit cost at its end.
  util::Rng rng(0xB1B1);
  double min_t = 1e300, min_r = 1e300;
  for (const auto& c : table_.candidates()) {
    min_t = std::min(min_t, c.tx_joules_per_bit());
    min_r = std::min(min_r, c.rx_joules_per_bit());
  }
  for (int trial = 0; trial < 200; ++trial) {
    core::LifetimeConfig cfg;
    cfg.distance_m = rng.uniform(0.2, 5.0);
    const double e1 = rng.uniform(10.0, 1e6);
    const double e2 = rng.uniform(10.0, 1e6);
    const double bits = sim_.braidio(JL(e1), JL(e2), cfg).bits;
    EXPECT_LE(bits, e1 / min_t * (1.0 + 1e-9));
    EXPECT_LE(bits, e2 / min_r * (1.0 + 1e-9));
  }
}

TEST_F(PropertyTest, GainCollapsesExactlyWhereOffloadDies) {
  // For any energies, the gain over Bluetooth is exactly 1 wherever only
  // the active mode remains (Regime C).
  util::Rng rng(0xB1B2);
  for (int trial = 0; trial < 100; ++trial) {
    core::LifetimeConfig cfg;
    cfg.distance_m = rng.uniform(5.2, 6.0);
    cfg.include_switch_overhead = false;
    const double e1 = rng.uniform(100.0, 1e6);
    const double e2 = rng.uniform(100.0, 1e6);
    const double braid = sim_.braidio(JL(e1), JL(e2), cfg).bits;
    const double bt = sim_.bluetooth_bits(JL(e1), JL(e2), false);
    EXPECT_NEAR(braid / bt, 1.0, 1e-9) << cfg.distance_m;
  }
}

TEST_F(PropertyTest, RangeAndAvailabilityAgreeForRandomBudgets) {
  // LinkBudget invariant under random re-anchoring: available() flips
  // exactly at range_m().
  util::Rng rng(0xB1B3);
  for (int trial = 0; trial < 50; ++trial) {
    phy::LinkBudgetConfig cfg;
    cfg.backscatter_range_1m_bps = rng.uniform(0.4, 1.4);
    cfg.backscatter_range_100k = cfg.backscatter_range_1m_bps +
                                 rng.uniform(0.2, 1.2);
    cfg.backscatter_range_10k = cfg.backscatter_range_100k +
                                rng.uniform(0.2, 1.2);
    cfg.passive_range_1m_bps = rng.uniform(2.0, 4.5);
    cfg.passive_range_100k = cfg.passive_range_1m_bps + rng.uniform(0.1, 1.0);
    cfg.passive_range_10k = cfg.passive_range_100k + rng.uniform(0.1, 1.0);
    phy::LinkBudget budget(cfg);
    for (phy::LinkMode mode :
         {phy::LinkMode::Backscatter, phy::LinkMode::PassiveRx}) {
      for (phy::Bitrate rate : phy::kAllBitrates) {
        const double r = budget.range_m(mode, rate);
        EXPECT_TRUE(budget.available(mode, rate, r * 0.98));
        EXPECT_FALSE(budget.available(mode, rate, r * 1.02));
      }
    }
  }
}

}  // namespace
}  // namespace braidio
