// Network flight recorder (DESIGN.md §17): per-node counter planes,
// the per-link loss matrix, packet-lifecycle flow tracing, scheduler
// introspection, and the serial-vs-parallel merge determinism pin.
#include "net/netstats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "backends/backends.hpp"
#include "net/network_sim.hpp"
#include "obs/obs.hpp"
#include "sim/faults/fault_timeline.hpp"
#include "sim/faults/impairment.hpp"
#include "sim/scenario.hpp"
#include "sim/sweep_runner.hpp"

namespace braidio::net {
namespace {

const hal::RadioBackend& backend() {
  backends::register_all();
  return hal::BackendRegistry::instance().get(backends::kBraidio);
}

#if BRAIDIO_OBS_COMPILED

/// RAII guard: every test that touches the process-wide tracer restores
/// it (disabled, default capacity, empty) so test order never matters.
struct TracerGuard {
  ~TracerGuard() {
    obs::Tracer::instance().set_enabled(false);
    obs::Tracer::instance().set_lane_capacity(std::size_t{1} << 14);
    obs::Tracer::instance().clear();
  }
};

std::uint64_t node_sum(const NetFlightRecord& record, NodeCounter counter) {
  std::uint64_t sum = 0;
  for (const auto& block : record.nodes) sum += block.value(counter);
  return sum;
}

TEST(NetFlightRecorder, DisabledByDefaultAndInert) {
  NetConfig cfg;
  cfg.backend = &backend();
  cfg.topology.nodes = 8;
  cfg.packets_per_node = 1;
  NetworkSimulator sim(cfg);
  sim.run();
  const NetFlightRecord& record = sim.flight_record();
  EXPECT_FALSE(record.enabled);
  EXPECT_TRUE(record.nodes.empty());
  EXPECT_TRUE(record.links.empty());
  EXPECT_EQ(record.latency.count(), 0u);
}

TEST(NetFlightRecorder, CountersReconcileWithNetStats) {
  NetConfig cfg;
  cfg.backend = &backend();
  cfg.topology.kind = TopologyKind::Grid;
  cfg.topology.nodes = 48;
  cfg.topology.extent_m = 4.0;
  cfg.packets_per_node = 2;
  cfg.flight_recorder = true;
  NetworkSimulator sim(cfg);
  const NetStats stats = sim.run();
  const NetFlightRecord& record = sim.flight_record();

  ASSERT_TRUE(record.enabled);
  ASSERT_EQ(record.nodes.size(), cfg.topology.nodes + 1);
  ASSERT_EQ(record.links.size(), cfg.topology.nodes + 1);

  // The counter planes must agree with the simulator's own summary.
  EXPECT_EQ(node_sum(record, NodeCounter::TxAttempts), stats.tx_attempts);
  EXPECT_EQ(node_sum(record, NodeCounter::Delivered), stats.delivered);
  EXPECT_EQ(node_sum(record, NodeCounter::Relayed), stats.forwarded);
  EXPECT_EQ(node_sum(record, NodeCounter::DropsArq), stats.arq_drops);
  EXPECT_EQ(record.latency.count(), stats.delivered);

  // Every resolved transmission lands in exactly one uplink row, and
  // every failure is attributed to exactly one loss leg.
  std::uint64_t attempts = 0, acked = 0, lost = 0;
  for (const auto& link : record.links) {
    attempts += link.attempts;
    acked += link.acked;
    lost += link.data_lost + link.ack_lost;
    EXPECT_EQ(link.attempts, link.acked + link.data_lost + link.ack_lost);
  }
  EXPECT_EQ(attempts, stats.tx_attempts);
  EXPECT_EQ(acked + lost, attempts);

  // Scheduler plane: the series covers every pop (or counts it skipped),
  // and the end-of-run summary mirrors NetStats.
  std::uint64_t series_events = 0;
  for (const std::uint64_t e : record.sched.events) series_events += e;
  EXPECT_EQ(series_events + record.sched.skipped, stats.events);
  EXPECT_EQ(record.events, stats.events);
  EXPECT_EQ(record.sched_retunes, stats.sched_retunes);
  EXPECT_EQ(record.sched_peak_depth, stats.sched_peak_depth);
  EXPECT_GT(record.sched_peak_depth, 0u);

  // Exports parse-back at the smoke level: schema line, one CSV row per
  // node plus the header.
  const std::string json = record.to_json();
  EXPECT_NE(json.find("\"schema\": \"braidio-netstats/v1\""),
            std::string::npos);
  const std::string csv = record.to_csv();
  const auto rows = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(static_cast<std::size_t>(rows), record.nodes.size() + 1);
}

// ISSUE 10 pin: per-node stats merged in flat-index order are
// byte-identical serial vs parallel. Eight 128-tag replicas ≈ 1k nodes.
TEST(NetFlightRecorder, MergedSweepStatsByteIdenticalSerialVsParallel) {
  const auto run_with_threads = [&](unsigned threads) {
    constexpr std::size_t kReplicas = 8;
    std::vector<NetFlightRecord> records(kReplicas);
    sim::Scenario scenario(
        "net_stats_determinism",
        {sim::Axis::indexed("replica", kReplicas)}, {"events"},
        [&](sim::SweepPoint& p) {
          NetConfig cfg;
          cfg.backend = &backend();
          cfg.topology.nodes = 128;  // star: same link shape per seed
          cfg.packets_per_node = 2;
          cfg.seed = p.seed();
          cfg.flight_recorder = true;
          NetworkSimulator sim(cfg);
          const NetStats stats = sim.run();
          records[p.flat_index()] = sim.flight_record();
          sim::RunRecord record;
          record.cells = {std::to_string(stats.events)};
          return record;
        });
    sim::SweepOptions options;
    options.threads = threads;
    sim::SweepRunner(options).run(scenario);
    NetFlightRecord merged;
    for (const auto& record : records) merged.merge(record);
    return merged.to_json() + merged.to_csv();
  };
  const std::string serial = run_with_threads(1);
  const std::string parallel = run_with_threads(4);
  EXPECT_EQ(serial, parallel);
  EXPECT_FALSE(serial.empty());
}

TEST(NetFlightRecorder, MergeAddsCountersAndLatency) {
  NetConfig cfg;
  cfg.backend = &backend();
  cfg.topology.nodes = 32;
  cfg.packets_per_node = 2;
  cfg.flight_recorder = true;

  cfg.seed = 1;
  NetworkSimulator a(cfg);
  a.run();
  cfg.seed = 2;
  NetworkSimulator b(cfg);
  b.run();

  NetFlightRecord merged;
  merged.merge(a.flight_record());
  merged.merge(b.flight_record());
  EXPECT_EQ(node_sum(merged, NodeCounter::TxAttempts),
            node_sum(a.flight_record(), NodeCounter::TxAttempts) +
                node_sum(b.flight_record(), NodeCounter::TxAttempts));
  EXPECT_EQ(merged.latency.count(), a.flight_record().latency.count() +
                                        b.flight_record().latency.count());
  EXPECT_EQ(merged.events,
            a.flight_record().events + b.flight_record().events);
}

// ISSUE 10 pin: Chrome flow-event export parses back — every packet id
// opens with "s", advances with "t", closes with "f"/"bp":"e", and a
// multi-hop grid shows at least one relay chain.
TEST(NetFlightRecorder, ChromeFlowEventsParseBack) {
  TracerGuard guard;
  auto& tracer = obs::Tracer::instance();
  tracer.set_lane_capacity(std::size_t{1} << 16);
  tracer.clear();
  tracer.set_enabled(true);

  NetConfig cfg;
  cfg.backend = &backend();
  cfg.topology.kind = TopologyKind::Grid;
  cfg.topology.nodes = 48;
  cfg.topology.extent_m = 4.0;
  cfg.packets_per_node = 2;
  NetworkSimulator sim(cfg);
  const NetStats stats = sim.run();
  ASSERT_GT(stats.forwarded, 0u) << "grid run should relay";

  const auto snapshot = tracer.snapshot();
  tracer.set_enabled(false);

  std::size_t begins = 0, steps = 0, ends = 0, relays = 0;
  for (const auto& lane : snapshot.lanes) {
    for (const auto& ev : lane.events) {
      if (!obs::is_flow_event(ev.type)) continue;
      switch (ev.type) {
        case obs::EventType::PacketFlowBegin: ++begins; break;
        case obs::EventType::PacketFlowStep:
          ++steps;
          if (std::strncmp(ev.label, "relay", 5) == 0) ++relays;
          break;
        case obs::EventType::PacketFlowEnd: ++ends; break;
        default: break;
      }
    }
  }
  EXPECT_EQ(begins, stats.generated);
  EXPECT_EQ(ends, stats.delivered + stats.arq_drops + stats.csma_failures);
  EXPECT_GE(relays, 1u) << "need >= 1 multi-hop chain in the trace";
  EXPECT_GT(steps, begins);

  const std::string json = obs::chrome_trace_json(snapshot);
  EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"t\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\": \"e\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"packet\""), std::string::npos);
  // Flow arrows carry the packet id that threads the chain together.
  EXPECT_NE(json.find("\"id\": 1"), std::string::npos);
}

// ISSUE 10 pin: ring-overflow drop accounting under a dense 10k-node
// run with a deliberately tiny ring: recorded = kept + dropped.
TEST(NetFlightRecorder, RingOverflowDropAccountingAt10kNodes) {
  TracerGuard guard;
  auto& tracer = obs::Tracer::instance();
  tracer.set_lane_capacity(256);  // tiny: the dense run must wrap
  tracer.clear();
  tracer.set_enabled(true);

  NetConfig cfg;
  cfg.backend = &backend();
  cfg.topology.nodes = 10000;
  cfg.packets_per_node = 1;
  cfg.flight_recorder = true;
  NetworkSimulator sim(cfg);
  const NetStats stats = sim.run();
  EXPECT_GT(stats.events, 10000u);

  const auto snapshot = tracer.snapshot();
  tracer.set_enabled(false);
  EXPECT_GT(snapshot.total_dropped(), 0u);
  std::uint64_t kept = 0, recorded = 0, dropped = 0;
  for (const auto& lane : snapshot.lanes) {
    kept += lane.events.size();
    recorded += lane.recorded;
    dropped += lane.dropped;
  }
  EXPECT_EQ(recorded, kept + dropped);

  // The stats plane is ring-independent: nothing the ring dropped is
  // missing from the counters.
  const NetFlightRecord& record = sim.flight_record();
  EXPECT_EQ(node_sum(record, NodeCounter::TxAttempts), stats.tx_attempts);
  EXPECT_EQ(record.events, stats.events);
}

TEST(NetFlightRecorder, FaultActiveEventNamesTargetedNode) {
  TracerGuard guard;
  auto& tracer = obs::Tracer::instance();
  tracer.set_lane_capacity(std::size_t{1} << 12);
  tracer.clear();
  tracer.set_enabled(true);

  std::istringstream script("dropout 0 1e6 @1\n");
  std::string error;
  const auto timeline = sim::faults::FaultTimeline::parse(script, &error);
  ASSERT_TRUE(timeline.has_value()) << error;
  const sim::faults::ImpairmentSchedule schedule(*timeline);

  NetConfig cfg;
  cfg.backend = &backend();
  cfg.topology.nodes = 2;
  cfg.topology.extent_m = 0.3;
  cfg.packets_per_node = 1;
  cfg.impairments = &schedule;
  NetworkSimulator sim(cfg);
  sim.run();

  const auto snapshot = tracer.snapshot();
  tracer.set_enabled(false);
  bool found = false;
  for (const auto& lane : snapshot.lanes) {
    for (const auto& ev : lane.events) {
      if (ev.type == obs::EventType::FaultActive &&
          std::strcmp(ev.label, "dropout@1") == 0) {
        found = true;
        EXPECT_EQ(ev.value, 1.0);  // value carries the target node
      }
    }
  }
  EXPECT_TRUE(found) << "expected a FaultActive event labeled dropout@1";
}

TEST(NetFlightRecorder, SchedChromeCountersExport) {
  NetConfig cfg;
  cfg.backend = &backend();
  cfg.topology.nodes = 64;
  cfg.packets_per_node = 2;
  cfg.flight_recorder = true;
  cfg.stats_bucket_s = 0.01;
  NetworkSimulator sim(cfg);
  sim.run();
  const std::string doc = sim.flight_record().sched_chrome_counters();
  EXPECT_NE(doc.find("\"name\": \"net.sched\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(doc.find("\"events\""), std::string::npos);
  EXPECT_NE(doc.find("\"peak_depth\""), std::string::npos);
}

#else  // !BRAIDIO_OBS_COMPILED

TEST(NetFlightRecorder, ArmIsNoOpWhenObsCompiledOut) {
  NetConfig cfg;
  cfg.backend = &backend();
  cfg.topology.nodes = 8;
  cfg.packets_per_node = 1;
  cfg.flight_recorder = true;  // requested but compiled out
  NetworkSimulator sim(cfg);
  sim.run();
  EXPECT_FALSE(sim.flight_record().enabled);
  EXPECT_TRUE(sim.flight_record().nodes.empty());
}

#endif  // BRAIDIO_OBS_COMPILED

}  // namespace
}  // namespace braidio::net
