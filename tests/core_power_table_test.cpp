#include "core/power_table.hpp"

#include <gtest/gtest.h>

#include "util/units.hpp"

namespace braidio::core {
namespace {

class PowerTableTest : public ::testing::Test {
 protected:
  PowerTable table_;
};

TEST_F(PowerTableTest, NineOperatingPoints) {
  EXPECT_EQ(table_.candidates().size(), 9u);
  for (auto mode : phy::kAllLinkModes) {
    for (auto rate : phy::kAllBitrates) {
      EXPECT_NO_THROW(table_.candidate(mode, rate));
    }
  }
}

TEST_F(PowerTableTest, HeadlineRatiosFromFigure14) {
  using phy::Bitrate;
  using phy::LinkMode;
  // Passive-RX: 1:2546, 1:4000, 1:5600.
  EXPECT_NEAR(1.0 / table_.candidate(LinkMode::PassiveRx, Bitrate::M1)
                        .efficiency_ratio(),
              2546.0, 0.5);
  EXPECT_NEAR(1.0 / table_.candidate(LinkMode::PassiveRx, Bitrate::k100)
                        .efficiency_ratio(),
              4000.0, 0.5);
  EXPECT_NEAR(1.0 / table_.candidate(LinkMode::PassiveRx, Bitrate::k10)
                        .efficiency_ratio(),
              5600.0, 0.5);
  // Backscatter: 3546:1, 5571:1, 7800:1.
  EXPECT_NEAR(table_.candidate(LinkMode::Backscatter, Bitrate::M1)
                  .efficiency_ratio(),
              3546.0, 0.5);
  EXPECT_NEAR(table_.candidate(LinkMode::Backscatter, Bitrate::k100)
                  .efficiency_ratio(),
              5571.0, 0.5);
  EXPECT_NEAR(table_.candidate(LinkMode::Backscatter, Bitrate::k10)
                  .efficiency_ratio(),
              7800.0, 0.5);
  // Active: 0.9524:1.
  EXPECT_NEAR(
      table_.candidate(LinkMode::Active, Bitrate::M1).efficiency_ratio(),
      0.9524, 1e-3);
}

TEST_F(PowerTableTest, PaperPowerEnvelope) {
  // "Braidio ... consumes between 16uW - 129mW across the different modes."
  EXPECT_NEAR(table_.max_power_w(), 0.129, 1e-9);
  EXPECT_NEAR(util::watts_to_uw(table_.min_power_w()), 16.5, 0.2);
}

TEST_F(PowerTableTest, CarrierHolderAlwaysPaysTheBudget) {
  using phy::LinkMode;
  for (auto rate : phy::kAllBitrates) {
    EXPECT_DOUBLE_EQ(table_.candidate(LinkMode::PassiveRx, rate).tx_power_w,
                     0.129);
    EXPECT_DOUBLE_EQ(
        table_.candidate(LinkMode::Backscatter, rate).rx_power_w, 0.129);
  }
}

TEST_F(PowerTableTest, PerBitCostsScaleInverselyWithBitrate) {
  using phy::Bitrate;
  using phy::LinkMode;
  const auto& fast = table_.candidate(LinkMode::PassiveRx, Bitrate::M1);
  const auto& slow = table_.candidate(LinkMode::PassiveRx, Bitrate::k10);
  // Same carrier power, 100x fewer bits/s -> 100x the TX per-bit cost.
  EXPECT_NEAR(slow.tx_joules_per_bit() / fast.tx_joules_per_bit(), 100.0,
              1e-9);
}

TEST_F(PowerTableTest, PassiveEndsAreMicrowattClass) {
  using phy::LinkMode;
  for (auto rate : phy::kAllBitrates) {
    EXPECT_LT(table_.candidate(LinkMode::PassiveRx, rate).rx_power_w, 60e-6);
    EXPECT_LT(table_.candidate(LinkMode::Backscatter, rate).tx_power_w,
              40e-6);
  }
}

TEST_F(PowerTableTest, Table5SwitchOverheads) {
  using phy::LinkMode;
  const auto& active = table_.switch_overhead(LinkMode::Active);
  EXPECT_NEAR(active.tx_joules, util::wh_to_joules(1.05e-9), 1e-12);
  EXPECT_NEAR(active.rx_joules, util::wh_to_joules(1.01e-9), 1e-12);
  const auto& passive = table_.switch_overhead(LinkMode::PassiveRx);
  EXPECT_NEAR(passive.rx_joules, util::wh_to_joules(4.40e-12), 1e-15);
  const auto& bs = table_.switch_overhead(LinkMode::Backscatter);
  EXPECT_NEAR(bs.tx_joules, util::wh_to_joules(8.58e-8), 1e-10);
  // Paper: "switching overhead is negligible" — sub-millijoule everywhere.
  EXPECT_LT(bs.tx_joules, 1e-3);
}

TEST_F(PowerTableTest, LabelsAreHumanReadable) {
  EXPECT_EQ(
      table_.candidate(phy::LinkMode::Backscatter, phy::Bitrate::M1).label(),
      "backscatter@1M");
  EXPECT_EQ(
      table_.candidate(phy::LinkMode::Active, phy::Bitrate::k10).label(),
      "active@10k");
}

TEST_F(PowerTableTest, ActiveModeNearSymmetric) {
  // Table 1's point, inverted: Braidio's active mode looks like Bluetooth.
  for (auto rate : phy::kAllBitrates) {
    const auto& c = table_.candidate(phy::LinkMode::Active, rate);
    EXPECT_GT(c.efficiency_ratio(), 0.8);
    EXPECT_LT(c.efficiency_ratio(), 1.25);
  }
}

TEST_F(PowerTableTest, BackscatterTagFloorIsThePaper16uW) {
  const auto& tag =
      table_.candidate(phy::LinkMode::Backscatter, phy::Bitrate::k10);
  EXPECT_NEAR(util::watts_to_uw(tag.tx_power_w), 16.5, 0.1);
}

}  // namespace
}  // namespace braidio::core
