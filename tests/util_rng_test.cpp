#include "util/rng.hpp"

#include <cmath>
#include <cstdint>
#include <numbers>

#include <gtest/gtest.h>

namespace braidio::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 7u);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMomentsApproximate) {
  Rng rng(11);
  const int n = 200'000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian(2.0, 3.0);
    sum += g;
    sq += g * g;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(Rng, BernoulliEdgeProbabilities) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-1.0));
    EXPECT_TRUE(rng.bernoulli(2.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, RayleighMeanMatchesTheory) {
  Rng rng(19);
  const double sigma = 2.0;
  double sum = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.rayleigh(sigma);
  // E[R] = sigma * sqrt(pi/2).
  EXPECT_NEAR(sum / n, sigma * std::sqrt(std::numbers::pi / 2.0), 0.02);
  EXPECT_THROW(rng.rayleigh(0.0), std::domain_error);
}

TEST(Rng, ExponentialMeanMatchesTheory) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
  EXPECT_THROW(rng.exponential(-1.0), std::domain_error);
}

TEST(Rng, PhaseWithinCircle) {
  Rng rng(29);
  for (int i = 0; i < 10'000; ++i) {
    const double p = rng.phase();
    EXPECT_GE(p, 0.0);
    EXPECT_LT(p, 2.0 * std::numbers::pi);
  }
}

// Pins the exact output stream of uniform_int. The implementation uses
// bitmask rejection sampling on the raw engine (not the stdlib's
// implementation-defined std::uniform_int_distribution), so these values
// must reproduce bit-for-bit on every platform and stdlib. If this test
// fails, the change silently re-randomised every seeded experiment.
TEST(Rng, UniformIntStreamPinnedBitForBit) {
  Rng rng(2016);
  const std::uint64_t expected[] = {
      494592u,  43785u,  54216u,  351193u,
      332690u, 77789u, 313035u, 391672u,
  };
  for (std::uint64_t want : expected) {
    EXPECT_EQ(rng.uniform_int(0, 999'999), want);
  }

  // A span whose mask spans well past 32 bits, exercising the wide path.
  Rng wide(7);
  const std::uint64_t expected_wide[] = {
      6'711'960'922'535u,
      6'227'518'977'998u,
      5'418'883'779'830u,
      7'399'534'684'524u,
  };
  for (std::uint64_t want : expected_wide) {
    EXPECT_EQ(wide.uniform_int(1'000'000'000'000u, 9'000'000'000'000u), want);
  }

  // Degenerate span: lo == hi must not consume entropy-independent paths
  // differently across platforms — it is a single deterministic value.
  Rng fixed(3);
  EXPECT_EQ(fixed.uniform_int(42, 42), 42u);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.uniform() == child.uniform()) ++same;
  }
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace braidio::util
