// Event-queue core + CSMA-CA state machine: the determinism substrate
// of the network simulator (DESIGN.md §15).
#include "net/event_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "net/csma.hpp"
#include "util/rng.hpp"

namespace braidio::net {
namespace {

TEST(EventQueue, RejectsBadConstruction) {
  EXPECT_THROW(EventQueue(0.0), std::invalid_argument);
  EXPECT_THROW(EventQueue(-1.0), std::invalid_argument);
  EXPECT_THROW(EventQueue(1.0, 0), std::invalid_argument);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  queue.schedule(3.0, 3, 0);
  queue.schedule(1.0, 1, 0);
  queue.schedule(2.0, 2, 0);
  Event ev;
  for (std::uint32_t want = 1; want <= 3; ++want) {
    ASSERT_TRUE(queue.pop(ev));
    EXPECT_EQ(ev.node, want);
    EXPECT_DOUBLE_EQ(queue.now_s(), static_cast<double>(want));
  }
  EXPECT_FALSE(queue.pop(ev));
  EXPECT_EQ(queue.processed(), 3u);
}

TEST(EventQueue, SameTimestampTiesBreakBySequence) {
  EventQueue queue;
  // Schedule out of node order at one instant: pops must follow the
  // schedule() call order (seq), not node ids or insertion luck.
  const std::uint32_t order[] = {7, 2, 9, 0, 5};
  for (const std::uint32_t node : order) queue.schedule(1.0, node, 0);
  Event ev;
  for (const std::uint32_t want : order) {
    ASSERT_TRUE(queue.pop(ev));
    EXPECT_EQ(ev.node, want);
  }
}

TEST(EventQueue, PayloadWordsSurviveTheQueue) {
  EventQueue queue;
  queue.schedule(1.0, 4, 2, 0xDEADBEEFull, 42);
  Event ev;
  ASSERT_TRUE(queue.pop(ev));
  EXPECT_EQ(ev.kind, 2u);
  EXPECT_EQ(ev.a, 0xDEADBEEFull);
  EXPECT_EQ(ev.b, 42u);
}

TEST(EventQueue, PoolSlotsAreReusedNotLeaked) {
  EventQueue queue;
  // Steady-state churn with at most 4 outstanding events: the pool must
  // plateau at the peak working set, not grow with total traffic.
  double t = 0.0;
  for (int round = 0; round < 1000; ++round) {
    for (std::uint32_t i = 0; i < 4; ++i) queue.schedule(t + 1.0, i, 0);
    Event ev;
    for (int i = 0; i < 4; ++i) ASSERT_TRUE(queue.pop(ev));
    t = queue.now_s();
  }
  EXPECT_LE(queue.pool_slots(), 8u);
  EXPECT_EQ(queue.processed(), 4000u);
}

TEST(EventQueue, ResetRecyclesTheArena) {
  EventQueue queue;
  for (std::uint32_t i = 0; i < 64; ++i) {
    queue.schedule(static_cast<double>(i), i, 0);
  }
  const std::size_t slots = queue.pool_slots();
  queue.reset();
  EXPECT_TRUE(queue.empty());
  EXPECT_DOUBLE_EQ(queue.now_s(), 0.0);
  EXPECT_EQ(queue.pool_slots(), slots);  // retained, not freed
  // A refill of the same working set must not allocate new slots, and
  // the clock restarts from zero.
  for (std::uint32_t i = 0; i < 64; ++i) {
    queue.schedule(static_cast<double>(i), i, 0);
  }
  EXPECT_EQ(queue.pool_slots(), slots);
  Event ev;
  ASSERT_TRUE(queue.pop(ev));
  EXPECT_EQ(ev.node, 0u);
}

TEST(EventQueue, WrapsAroundManyCalendarLaps) {
  // 8 buckets x 1 ms days: consecutive events 5 days apart lap the
  // calendar hundreds of times; order and clock must never slip.
  EventQueue queue(1e-3, 8);
  double t = 0.0;
  std::uint32_t seq = 0;
  for (int i = 0; i < 500; ++i) {
    t += 5e-3;
    queue.schedule(t, seq++, 0);
  }
  Event ev;
  double last = 0.0;
  for (std::uint32_t want = 0; want < seq; ++want) {
    ASSERT_TRUE(queue.pop(ev));
    EXPECT_EQ(ev.node, want);
    EXPECT_GT(ev.time_s, last);
    last = ev.time_s;
  }
}

TEST(EventQueue, SparseJumpSkipsEmptyYears) {
  // A gap a whole lap cannot cover forces the sparse-region jump; the
  // far event must still fire (and in (time, seq) order).
  EventQueue queue(1e-3, 8);
  queue.schedule(1e-3, 1, 0);
  queue.schedule(1000.0, 3, 0);
  queue.schedule(1000.0, 2, 0);  // same instant: seq breaks the tie
  Event ev;
  ASSERT_TRUE(queue.pop(ev));
  EXPECT_EQ(ev.node, 1u);
  ASSERT_TRUE(queue.pop(ev));
  EXPECT_EQ(ev.node, 3u);
  ASSERT_TRUE(queue.pop(ev));
  EXPECT_EQ(ev.node, 2u);
  EXPECT_DOUBLE_EQ(queue.now_s(), 1000.0);
}

TEST(EventQueue, RetunesWidthForClusteredWorkloads) {
  // Thousands of live events packed into a handful of 250 us days: the
  // calendar must shrink its width rather than degrade to long sorted
  // scans — and the pop order must stay exactly (time, seq).
  EventQueue queue;
  const double initial_width = queue.bucket_width_s();
  util::Rng rng(7);
  std::vector<double> times;
  for (int i = 0; i < 4000; ++i) {
    const double t = rng.uniform(0.0, 2e-3);
    times.push_back(t);
    queue.schedule(t, static_cast<std::uint32_t>(i), 0);
  }
  EXPECT_LT(queue.bucket_width_s(), initial_width);
  Event ev;
  double last = -1.0;
  std::uint64_t last_seq = 0;
  for (std::size_t i = 0; i < times.size(); ++i) {
    ASSERT_TRUE(queue.pop(ev));
    if (ev.time_s == last) {
      EXPECT_GT(ev.seq, last_seq);  // FIFO among simultaneous events
    } else {
      EXPECT_GT(ev.time_s, last);
    }
    last = ev.time_s;
    last_seq = ev.seq;
  }
  EXPECT_TRUE(queue.empty());
}

TEST(CsmaCa, RejectsBadConfig) {
  CsmaConfig bad;
  bad.min_be = 6;
  bad.max_be = 5;
  EXPECT_THROW(CsmaCa{bad}, std::invalid_argument);
  CsmaConfig zero_unit;
  zero_unit.unit_backoff_s = 0.0;
  EXPECT_THROW(CsmaCa{zero_unit}, std::invalid_argument);
  CsmaConfig zero_window;
  zero_window.cca_window_s = 0.0;
  EXPECT_THROW(CsmaCa{zero_window}, std::invalid_argument);
}

TEST(CsmaCa, BeResetSemanticsMatchTheSubMacLifecycle) {
  // Audit pin for the 802.15.4 NB/BE lifecycle (see csma.hpp): begin()
  // is the per-access-attempt reset, called by the MAC for every new
  // frame AND every ARQ retransmission. BE rises only through busy()
  // *within* one attempt, and a clear CCA mid-attempt does NOT re-lower
  // it — the attempt is over once the frame hits the air, and the next
  // attempt's begin() is what restores min_be.
  CsmaCa csma;
  csma.begin();
  EXPECT_EQ(csma.be(), csma.config().min_be);
  EXPECT_EQ(csma.backoffs(), 0u);
  // Busy CCAs raise BE toward the cap, one budget unit each.
  EXPECT_TRUE(csma.busy());
  EXPECT_EQ(csma.be(), csma.config().min_be + 1);
  EXPECT_TRUE(csma.busy());
  EXPECT_TRUE(csma.busy());
  EXPECT_EQ(csma.be(), csma.config().max_be);  // capped at macMaxBE
  EXPECT_TRUE(csma.busy());
  EXPECT_EQ(csma.be(), csma.config().max_be);  // stays capped
  EXPECT_EQ(csma.backoffs(), 4u);
  // The frame now clears CCA and transmits: nothing in the state machine
  // moves, and the *next* access attempt (new frame or retransmission)
  // starts over from min_be via begin().
  csma.begin();
  EXPECT_EQ(csma.be(), csma.config().min_be);
  EXPECT_EQ(csma.backoffs(), 0u);
}

TEST(CsmaCa, BackoffsGrowWithBusyChannelAndExhaust) {
  CsmaCa csma;
  util::Rng rng(1);
  csma.begin();
  // BE starts at min_be=3: backoff in [0, 7] unit periods.
  const double unit = csma.config().unit_backoff_s;
  for (int i = 0; i < 64; ++i) {
    const double b = csma.backoff_s(rng);
    EXPECT_GE(b, 0.0);
    EXPECT_LE(b, 7.0 * unit);
  }
  // Each busy raises BE toward max_be=5 and burns one of 4 retries.
  EXPECT_TRUE(csma.busy());
  EXPECT_TRUE(csma.busy());
  EXPECT_TRUE(csma.busy());
  bool saw_wide = false;
  for (int i = 0; i < 64; ++i) {
    const double b = csma.backoff_s(rng);
    EXPECT_LE(b, 31.0 * unit);
    if (b > 7.0 * unit) saw_wide = true;
  }
  EXPECT_TRUE(saw_wide);  // BE really did rise past min_be
  EXPECT_TRUE(csma.busy());   // 4th busy: the budget's last retry
  EXPECT_FALSE(csma.busy());  // budget exhausted: access failure
  csma.begin();  // re-arming restores the budget
  EXPECT_TRUE(csma.busy());
}

}  // namespace
}  // namespace braidio::net
