// Graceful-degradation suite: the protocol must degrade monotonically with
// fault severity, never livelock, and faulted sweeps must stay
// byte-identical between serial and parallel execution (the PR 2 guarantee
// extends to fault schedules).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <vector>

#include "core/braided_link.hpp"
#include "core/braidio_radio.hpp"
#include "sim/faults/fault_timeline.hpp"
#include "sim/faults/impairment.hpp"
#include "sim/scenario.hpp"
#include "sim/sweep_runner.hpp"
#include "util/units.hpp"

namespace braidio {
namespace {

struct Rig {
  core::PowerTable table;
  phy::LinkBudget budget;
  core::RegimeMap regimes{table, budget};
  core::BraidioRadio a{"phone", 1, util::WattHours(6.55), table};
  core::BraidioRadio b{"watch", 2, util::WattHours(0.78), table};
};

core::BraidedLinkStats run_faulted(
    const sim::faults::ImpairmentSchedule& schedule, std::uint64_t packets,
    std::uint64_t seed = 7) {
  Rig rig;
  core::BraidedLinkConfig cfg;
  cfg.distance_m = 0.8;
  cfg.packets_per_slot = 8;
  cfg.seed = seed;
  cfg.impairments = &schedule;
  core::BraidedLink link(rig.a, rig.b, rig.regimes, cfg);
  return link.run(packets);
}

TEST(Degradation, DeliveryRatioNonIncreasingInShadowingSeverity) {
  // One long shadowing window covering most of the run; severity is its
  // depth. Monotone by construction of the BER curve, so only a small
  // statistical slack is allowed.
  std::vector<double> severities_db = {0.0, 10.0, 20.0, 60.0};
  std::vector<double> ratios;
  for (const double db : severities_db) {
    sim::faults::FaultTimeline timeline;
    if (db > 0.0) {
      timeline = sim::faults::FaultTimeline{
          {{sim::faults::FaultKind::Shadowing, 0.0, 1e6, db, 0.0,
            sim::faults::kTargetBoth}}};
    }
    const sim::faults::ImpairmentSchedule schedule{timeline};
    ratios.push_back(run_faulted(schedule, 384).delivery_ratio());
  }
  EXPECT_GT(ratios.front(), 0.95);
  for (std::size_t i = 1; i < ratios.size(); ++i) {
    EXPECT_LE(ratios[i], ratios[i - 1] + 0.02)
        << severities_db[i] << " dB vs " << severities_db[i - 1] << " dB";
  }
  EXPECT_LT(ratios.back(), 0.05);  // 60 dB of shadowing kills the link
}

TEST(Degradation, DeliveredBitsNonIncreasingInDropoutBurstCount) {
  std::vector<unsigned> burst_counts = {0, 2, 8};
  std::vector<double> delivered_bits;
  for (const unsigned count : burst_counts) {
    sim::faults::FaultTimeline timeline;
    if (count > 0) {
      // Evenly spaced total outages, each 50 ms, starting early.
      timeline = sim::faults::FaultTimeline::periodic_bursts(
          sim::faults::FaultKind::CarrierDropout, count, 0.01, 0.1, 0.05,
          0.0);
    }
    const sim::faults::ImpairmentSchedule schedule{timeline};
    delivered_bits.push_back(
        run_faulted(schedule, 256).payload_bits_delivered);
  }
  for (std::size_t i = 1; i < delivered_bits.size(); ++i) {
    EXPECT_LE(delivered_bits[i], delivered_bits[i - 1])
        << burst_counts[i] << " bursts vs " << burst_counts[i - 1];
  }
}

TEST(Degradation, DeliveredBitsNonIncreasingInBrownoutDrain) {
  // Brownouts steal joules from the small device early in the run; a
  // fixed-size transfer must deliver no more under a harsher brownout.
  std::vector<double> drains_j = {0.0, 4e-4, 1.2e-3};
  std::vector<double> delivered_bits;
  for (const double joules : drains_j) {
    sim::faults::FaultTimeline timeline;
    if (joules > 0.0) {
      timeline = sim::faults::FaultTimeline{
          {{sim::faults::FaultKind::Brownout, 1e-4, 0.0, joules, 0.0,
            sim::faults::kTargetB}}};
    }
    const sim::faults::ImpairmentSchedule schedule{timeline};
    Rig rig;
    core::BraidedLinkConfig cfg;
    cfg.distance_m = 0.8;
    cfg.seed = 7;
    cfg.impairments = &schedule;
    // Shrink the watch battery so the brownout is material and the
    // run-to-death stays fast.
    core::BraidioRadio small("watch", 2, util::WattHours(5e-7),
                             rig.table);  // 1.8 mJ
    core::BraidedLink link(rig.a, small, rig.regimes, cfg);
    delivered_bits.push_back(link.run(1u << 20).payload_bits_delivered);
  }
  ASSERT_GT(delivered_bits.front(), 0.0);
  for (std::size_t i = 1; i < delivered_bits.size(); ++i) {
    EXPECT_LE(delivered_bits[i], delivered_bits[i - 1])
        << drains_j[i] << " J vs " << drains_j[i - 1] << " J";
  }
}

TEST(Degradation, NoLivelockAtTotalOutage) {
  // 100% loss for the whole run: every packet must exhaust its retry
  // budget and terminate — bounded retransmissions, no infinite loop.
  const sim::faults::ImpairmentSchedule schedule{sim::faults::FaultTimeline{
      {{sim::faults::FaultKind::CarrierDropout, 0.0, 1e9, 0.0, 0.0,
        sim::faults::kTargetBoth}}}};
  const std::uint64_t packets = 16;
  const auto stats = run_faulted(schedule, packets);
  EXPECT_EQ(stats.data_packets_delivered, 0u);
  EXPECT_EQ(stats.data_packets_offered + 0u, packets);
  EXPECT_EQ(stats.data_packets_dropped, packets);
  // Stop-and-wait budget: exactly max_retransmissions (7) per packet, and
  // the refused final attempt must NOT be counted (the old off-by-one).
  EXPECT_EQ(stats.retransmissions, packets * 7u);
  EXPECT_GT(stats.elapsed_s, 0.0);
}

TEST(Degradation, FaultActivationsAreCountedOnce) {
  const auto timeline = sim::faults::FaultTimeline::periodic_bursts(
      sim::faults::FaultKind::Shadowing, 5, 1e-3, 2e-3, 1e-3, 30.0);
  const sim::faults::ImpairmentSchedule schedule{timeline};
  const auto stats = run_faulted(schedule, 512);
  EXPECT_EQ(stats.fault_activations, 5u);
}

TEST(Degradation, FaultSweepSerialAndParallelAreByteIdentical) {
  // A fault-severity x seed sweep evaluated through the PR 2 engine: the
  // ResultTable JSON must not depend on the thread count.
  const std::vector<double> shadow_db = {0.0, 15.0, 40.0};
  sim::Scenario scenario(
      "degradation-sweep",
      {sim::Axis::numeric("shadow_db", shadow_db, 0),
       sim::Axis::indexed("replica", 2)},
      {"delivery", "retx", "faults"},
      [&](sim::SweepPoint& point) {
        const double db = shadow_db[point.axis_index(0)];
        sim::faults::FaultTimeline timeline;
        if (db > 0.0) {
          timeline = sim::faults::FaultTimeline::periodic_bursts(
              sim::faults::FaultKind::Shadowing, 3, 0.01, 0.05, 0.03, db);
        }
        const sim::faults::ImpairmentSchedule schedule{timeline};
        const auto stats = run_faulted(schedule, 96, point.seed());
        char delivery[32];
        std::snprintf(delivery, sizeof delivery, "%.6f",
                      stats.delivery_ratio());
        return sim::RunRecord{
            {delivery, std::to_string(stats.retransmissions),
             std::to_string(stats.fault_activations)},
            {stats.delivery_ratio(),
             static_cast<double>(stats.retransmissions)}};
      });
  const auto serial =
      sim::SweepRunner({.threads = 1, .seed = 42}).run(scenario);
  const auto parallel =
      sim::SweepRunner({.threads = 4, .seed = 42}).run(scenario);
  EXPECT_EQ(serial.to_json(), parallel.to_json());
}

}  // namespace
}  // namespace braidio
