#include "circuits/harvester.hpp"

#include <gtest/gtest.h>

#include "rf/constants.hpp"
#include "util/units.hpp"

namespace braidio::circuits {
namespace {

TEST(Harvester, EfficiencyShapesCorrectly) {
  Harvester h;
  // Below sensitivity: nothing.
  EXPECT_DOUBLE_EQ(h.efficiency(-30.0), 0.0);
  // At the half-efficiency point: half the peak.
  EXPECT_NEAR(h.efficiency(-10.0), 0.15, 1e-9);
  // Strong input: approaches the peak.
  EXPECT_NEAR(h.efficiency(20.0), 0.30, 0.01);
  // Monotone.
  double prev = 0.0;
  for (double dbm = -20.0; dbm <= 20.0; dbm += 1.0) {
    const double e = h.efficiency(dbm);
    EXPECT_GE(e + 1e-12, prev);
    prev = e;
  }
}

TEST(Harvester, HarvestedPowerKnownPoint) {
  Harvester h;
  // At 0 dBm (1 mW) incident, efficiency ~0.277 -> ~277 uW.
  EXPECT_NEAR(util::watts_to_uw(h.harvested_watts(0.0)), 277.0, 5.0);
}

TEST(Harvester, BatteryFreeTagRange) {
  // Can the Braidio tag end (16.5 uW at 10 kbps) run off the remote
  // 13 dBm carrier alone? Only at very short range — matching why the
  // paper keeps a (small) battery at the tag end.
  Harvester h;
  const double range = h.battery_free_range_m(
      16.5e-6, rf::kCarrierTxPowerDbm, rf::kCarrierFrequencyHz,
      rf::kChipAntennaGainDbi);
  EXPECT_GT(range, 0.1);
  EXPECT_LT(range, 1.0);
  // A lighter duty-cycled load stretches farther.
  const double light = h.battery_free_range_m(
      1e-6, rf::kCarrierTxPowerDbm, rf::kCarrierFrequencyHz,
      rf::kChipAntennaGainDbi);
  EXPECT_GT(light, range);
}

TEST(Harvester, RangeMonotoneInCarrierPower) {
  Harvester h;
  const double lo = h.battery_free_range_m(16.5e-6, 13.0, 915e6);
  const double hi = h.battery_free_range_m(16.5e-6, 30.0, 915e6);
  EXPECT_GT(hi, lo);
}

TEST(Harvester, ImpossibleLoadGivesZero) {
  Harvester h;
  EXPECT_DOUBLE_EQ(h.battery_free_range_m(1.0, 13.0, 915e6), 0.0);
}

TEST(Harvester, Validation) {
  HarvesterConfig bad;
  bad.peak_efficiency = 0.0;
  EXPECT_THROW(Harvester{bad}, std::invalid_argument);
  HarvesterConfig inverted;
  inverted.sensitivity_dbm = 0.0;
  EXPECT_THROW(Harvester{inverted}, std::invalid_argument);
  Harvester h;
  EXPECT_THROW(h.battery_free_range_m(0.0, 13.0, 915e6),
               std::invalid_argument);
}

TEST(Harvester, ConsistentWithKarthausFischerFloor) {
  // The paper's charge-pump citation: a fully integrated passive
  // transponder runs from 16.7 uW minimum RF input. At that input our
  // (conservative) efficiency curve still nets sub-uW — enough for a
  // duty-cycled transponder core, and well above the startup floor.
  Harvester h;
  const double in_dbm = util::watts_to_dbm(16.7e-6);
  EXPECT_GT(in_dbm, h.config().sensitivity_dbm);
  EXPECT_GT(h.harvested_watts(in_dbm), 3e-7);
}

}  // namespace
}  // namespace braidio::circuits
