// Headline reproduction checks for Figs. 15-18 (fluid lifetime simulator).
#include "core/lifetime_sim.hpp"

#include <gtest/gtest.h>

#include "util/units.hpp"

namespace braidio::core {
namespace {

class LifetimeTest : public ::testing::Test {
 protected:
  static energy::DeviceSpec device(const std::string& name) {
    const auto spec = energy::find_device(name);
    if (!spec) throw std::runtime_error("unknown device " + name);
    return *spec;
  }

  PowerTable table_;
  phy::LinkBudget budget_;
  LifetimeSimulator sim_{table_, budget_};
  LifetimeConfig close_{.distance_m = 0.5};
};

TEST_F(LifetimeTest, Figure15DiagonalIs1point4x) {
  // Equal batteries: Braidio still wins ~1.43x because only one end holds
  // the carrier at a time.
  for (const auto& dev : energy::device_catalog()) {
    const double gain = sim_.gain_vs_bluetooth(dev, dev, close_);
    EXPECT_NEAR(gain, 1.45, 0.05) << dev.name;
  }
}

TEST_F(LifetimeTest, Figure15CornersReachHundreds) {
  // Fuel Band <-> MacBook Pro 15: the paper reports 299x / 397x; our
  // battery catalog lands the same order of magnitude.
  const auto& band = device("Nike Fuel Band");
  const auto& mbp = device("MacBook Pro 15");
  const double small_to_big = sim_.gain_vs_bluetooth(band, mbp, close_);
  const double big_to_small = sim_.gain_vs_bluetooth(mbp, band, close_);
  EXPECT_GT(small_to_big, 150.0);
  EXPECT_LT(small_to_big, 600.0);
  EXPECT_GT(big_to_small, 150.0);
  EXPECT_LT(big_to_small, 600.0);
}

TEST_F(LifetimeTest, Figure15GainGrowsWithAsymmetry) {
  // Moving along a row away from the diagonal, gains must be monotone in
  // the battery ratio (up to the backscatter-corner saturation).
  const auto& band = device("Nike Fuel Band");
  double prev = 0.0;
  for (const auto& dev : energy::device_catalog()) {
    const double gain = sim_.gain_vs_bluetooth(band, dev, close_);
    EXPECT_GE(gain, prev * 0.999) << dev.name;
    prev = gain;
  }
}

TEST_F(LifetimeTest, Figure15MatrixIsShapedLikeThePaper) {
  // Every cell >= 1 (Braidio never loses to Bluetooth) and bounded by the
  // hard ceiling P_bt / tag_floor.
  const auto& catalog = energy::device_catalog();
  for (const auto& tx : catalog) {
    for (const auto& rx : catalog) {
      const double gain = sim_.gain_vs_bluetooth(tx, rx, close_);
      EXPECT_GE(gain, 1.0) << tx.name << "->" << rx.name;
      EXPECT_LT(gain, 2700.0) << tx.name << "->" << rx.name;
    }
  }
}

TEST_F(LifetimeTest, Figure16SwitchingBeatsBestSingleMode) {
  // Fig. 16: gains over the best single mode peak (paper: up to 1.78x)
  // near moderate asymmetry and fade toward 1.0x at the extremes.
  const auto& catalog = energy::device_catalog();
  double max_gain = 0.0;
  for (const auto& tx : catalog) {
    for (const auto& rx : catalog) {
      const double g = sim_.gain_vs_best_mode(tx, rx, close_);
      EXPECT_GE(g, 1.0 - 1e-9) << tx.name << "->" << rx.name;
      EXPECT_LE(g, 1.9) << tx.name << "->" << rx.name;
      max_gain = std::max(max_gain, g);
    }
  }
  EXPECT_GT(max_gain, 1.4);
  // Extreme asymmetry: a single mode is (nearly) optimal.
  EXPECT_NEAR(sim_.gain_vs_best_mode(device("Nike Fuel Band"),
                                     device("MacBook Pro 15"), close_),
              1.0, 0.05);
}

TEST_F(LifetimeTest, Figure17BidirectionalKeepsLargeGains) {
  LifetimeConfig bidir = close_;
  bidir.bidirectional = true;
  const auto& band = device("Nike Fuel Band");
  const auto& mbp = device("MacBook Pro 15");
  const double gain = sim_.gain_vs_bluetooth(band, mbp, bidir);
  EXPECT_GT(gain, 150.0);
  // Diagonal stays modest.
  EXPECT_NEAR(sim_.gain_vs_bluetooth(band, band, bidir), 1.43, 0.05);
}

TEST_F(LifetimeTest, Figure18GainsCollapseWithDistance) {
  // iPhone 6S -> Apple Watch and the reverse, swept over distance: strong
  // at close range, reduced in Regime B (only the large-to-small direction
  // retains offload), and exactly 1.0x once only the active mode remains.
  const auto& phone = device("iPhone 6S");
  const auto& watch = device("Apple Watch");
  LifetimeConfig cfg = close_;

  cfg.distance_m = 0.3;
  const double g_close_fwd = sim_.gain_vs_bluetooth(phone, watch, cfg);
  const double g_close_rev = sim_.gain_vs_bluetooth(watch, phone, cfg);
  EXPECT_GT(g_close_fwd, 4.0);
  EXPECT_GT(g_close_rev, 4.0);

  cfg.distance_m = 3.0;  // Regime B
  const double g_mid_fwd = sim_.gain_vs_bluetooth(phone, watch, cfg);
  const double g_mid_rev = sim_.gain_vs_bluetooth(watch, phone, cfg);
  EXPECT_GT(g_mid_fwd, 3.0);           // passive mode still offloads RX
  EXPECT_LT(g_mid_rev, 1.1);           // small->big lost its offload

  cfg.distance_m = 5.5;  // Regime C
  EXPECT_NEAR(sim_.gain_vs_bluetooth(phone, watch, cfg), 1.0, 1e-6);
  EXPECT_NEAR(sim_.gain_vs_bluetooth(watch, phone, cfg), 1.0, 1e-6);
}

TEST_F(LifetimeTest, ProportionalPlansEqualizeDeathTimes) {
  const double e1 = util::wh_to_joules(0.48);
  const double e2 = util::wh_to_joules(13.3);
  LifetimeConfig frictionless = close_;
  frictionless.include_switch_overhead = false;
  const auto outcome =
      sim_.braidio(util::Joules(e1), util::Joules(e2), frictionless);
  ASSERT_TRUE(outcome.plan.proportional);
  EXPECT_NEAR(e1 / outcome.plan.tx_joules_per_bit /
                  (e2 / outcome.plan.rx_joules_per_bit),
              1.0, 1e-6);
  EXPECT_GT(outcome.seconds, 0.0);
}

TEST_F(LifetimeTest, SwitchOverheadIsNegligibleAtSecondScaleDwells) {
  // Paper Table 5 takeaway. Compare bits with and without the overhead.
  const double e1 = util::wh_to_joules(0.26);
  const double e2 = util::wh_to_joules(6.55);
  LifetimeConfig with = close_;
  LifetimeConfig without = close_;
  without.include_switch_overhead = false;
  const double b_with =
      sim_.braidio(util::Joules(e1), util::Joules(e2), with).bits;
  const double b_without =
      sim_.braidio(util::Joules(e1), util::Joules(e2), without).bits;
  EXPECT_NEAR(b_with / b_without, 1.0, 1e-3);
}

TEST_F(LifetimeTest, RapidSwitchingWouldNotBeNegligible) {
  // Ablation: at millisecond-scale dwells the 8.58e-8 Wh backscatter
  // switch-in cost starts to bite — the reason Braidio dwells for many
  // packets per mode.
  LifetimeConfig rapid = close_;
  rapid.bits_per_dwell = 4096.0;  // ~4 ms at 1 Mbps
  LifetimeConfig slow = close_;
  const double e1 = util::wh_to_joules(0.26);
  const double e2 = util::wh_to_joules(0.26);
  const double b_rapid =
      sim_.braidio(util::Joules(e1), util::Joules(e2), rapid).bits;
  const double b_slow =
      sim_.braidio(util::Joules(e1), util::Joules(e2), slow).bits;
  EXPECT_LT(b_rapid, 0.9 * b_slow);
}

TEST_F(LifetimeTest, SingleModeBitsMatchClosedForm) {
  const auto& c = table_.candidate(phy::LinkMode::PassiveRx,
                                   phy::Bitrate::M1);
  const double e1 = 100.0, e2 = 50.0;
  EXPECT_NEAR(
      sim_.single_mode_bits(c, util::Joules(e1), util::Joules(e2), false),
              std::min(e1 / c.tx_joules_per_bit(),
                       e2 / c.rx_joules_per_bit()),
              1.0);
  // Bidirectional: both ends pay the average.
  EXPECT_NEAR(
      sim_.single_mode_bits(c, util::Joules(e1), util::Joules(e2), true),
              50.0 / (0.5 * (c.tx_joules_per_bit() +
                             c.rx_joules_per_bit())),
              1.0);
}

TEST_F(LifetimeTest, OutOfRangeThrows) {
  LifetimeConfig cfg;
  cfg.distance_m = 50.0;  // beyond even the active anchor
  EXPECT_THROW(sim_.braidio(util::Joules(1.0), util::Joules(1.0), cfg),
               std::runtime_error);
}

class DistanceSweep : public ::testing::TestWithParam<double> {};

TEST_P(DistanceSweep, GainNeverBelowBluetooth) {
  PowerTable table;
  phy::LinkBudget budget;
  LifetimeSimulator sim(table, budget);
  LifetimeConfig cfg;
  cfg.distance_m = GetParam();
  const auto& catalog = energy::device_catalog();
  const double gain = sim.gain_vs_bluetooth(catalog[2], catalog[6], cfg);
  EXPECT_GE(gain, 1.0 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DistanceSweep,
                         ::testing::Values(0.3, 0.7, 1.0, 1.5, 2.0, 2.5, 3.5,
                                           4.4, 5.0, 6.0));

}  // namespace
}  // namespace braidio::core
