#include "phy/modulation.hpp"

#include <gtest/gtest.h>

#include "phy/link_mode.hpp"

namespace braidio::phy {
namespace {

TEST(LinkMode, NamesAndRates) {
  EXPECT_STREQ(to_string(LinkMode::Active), "active");
  EXPECT_STREQ(to_string(LinkMode::PassiveRx), "passive");
  EXPECT_STREQ(to_string(LinkMode::Backscatter), "backscatter");
  EXPECT_EQ(to_string(Bitrate::k10), "10k");
  EXPECT_EQ(to_string(Bitrate::M1), "1M");
  EXPECT_DOUBLE_EQ(bitrate_bps(Bitrate::k10), 10e3);
  EXPECT_DOUBLE_EQ(bitrate_bps(Bitrate::k100), 100e3);
  EXPECT_DOUBLE_EQ(bitrate_bps(Bitrate::M1), 1e6);
}

TEST(Manchester, EncodesIeeeConvention) {
  const auto enc = manchester_encode({0, 1, 1, 0});
  const std::vector<std::uint8_t> expected{1, 0, 0, 1, 0, 1, 1, 0};
  EXPECT_EQ(enc, expected);
}

TEST(Manchester, RoundTripRandomPayloads) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto bits = random_bits(257, seed);
    const auto decoded = manchester_decode(manchester_encode(bits));
    ASSERT_TRUE(decoded.has_value()) << "seed " << seed;
    EXPECT_EQ(*decoded, bits);
  }
}

TEST(Manchester, DecoderRejectsInvalidStreams) {
  EXPECT_FALSE(manchester_decode({1, 0, 0}).has_value());  // odd length
  EXPECT_FALSE(manchester_decode({1, 1}).has_value());     // invalid pair
  EXPECT_FALSE(manchester_decode({0, 0}).has_value());
  // Empty stream decodes to empty payload.
  const auto empty = manchester_decode({});
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());
}

TEST(Manchester, IsDcBalanced) {
  const auto bits = random_bits(1000, 7);
  const auto enc = manchester_encode(bits);
  std::size_t ones = 0;
  for (auto b : enc) ones += b;
  EXPECT_EQ(ones, enc.size() / 2);  // exactly half ones, by construction
}

TEST(OokModulate, ExpandsSamplesPerBit) {
  OokModulatorConfig cfg;
  cfg.samples_per_bit = 4;
  cfg.on_amplitude = 2.0;
  cfg.off_amplitude = 0.5;
  const auto wave = ook_modulate({1, 0}, cfg);
  const std::vector<double> expected{2.0, 2.0, 2.0, 2.0, 0.5, 0.5, 0.5, 0.5};
  EXPECT_EQ(wave, expected);
  OokModulatorConfig bad;
  bad.samples_per_bit = 0;
  EXPECT_THROW(ook_modulate({1}, bad), std::invalid_argument);
}

TEST(OokDemodulate, MidpointSamplingRoundTrip) {
  OokModulatorConfig cfg;
  cfg.samples_per_bit = 8;
  const auto bits = random_bits(500, 3);
  const auto wave = ook_modulate(bits, cfg);
  const auto out = ook_demodulate_midpoint(wave, 8, 0.5);
  EXPECT_EQ(out, bits);
  EXPECT_THROW(ook_demodulate_midpoint(wave, 0, 0.5), std::invalid_argument);
}

TEST(OokDemodulate, IgnoresTrailingPartialBit) {
  const std::vector<double> wave{1.0, 1.0, 1.0, 0.0};  // 1 bit + 1 stray
  const auto out = ook_demodulate_midpoint(wave, 3, 0.5);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 1);
}

TEST(RandomBits, DeterministicAndBalanced) {
  const auto a = random_bits(10'000, 42);
  const auto b = random_bits(10'000, 42);
  EXPECT_EQ(a, b);
  std::size_t ones = 0;
  for (auto bit : a) ones += bit;
  EXPECT_NEAR(static_cast<double>(ones) / 10'000.0, 0.5, 0.02);
  EXPECT_NE(random_bits(100, 1), random_bits(100, 2));
}

TEST(BitErrors, CountsAndValidates) {
  EXPECT_EQ(bit_errors({1, 0, 1, 1}, {1, 1, 1, 0}), 2u);
  EXPECT_EQ(bit_errors({}, {}), 0u);
  // Nonzero values all count as "1".
  EXPECT_EQ(bit_errors({2}, {1}), 0u);
  EXPECT_THROW(bit_errors({1}, {1, 0}), std::invalid_argument);
}

}  // namespace
}  // namespace braidio::phy
