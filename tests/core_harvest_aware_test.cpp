#include "core/harvest_aware.hpp"

#include <gtest/gtest.h>

#include "core/offload.hpp"

namespace braidio::core {
namespace {

class HarvestAwareTest : public ::testing::Test {
 protected:
  PowerTable table_;
  phy::LinkBudget budget_;
  RegimeMap map_{table_, budget_};
};

TEST_F(HarvestAwareTest, HarvestedPowerDecaysWithDistance) {
  HarvestAwareConfig cfg;
  double prev = 1e9;
  for (double d : {0.1, 0.3, 0.6, 1.0, 2.0}) {
    const double p = harvested_power_w(cfg, d);
    EXPECT_LT(p, prev) << d;
    prev = p;
  }
  // Far away: below the harvester's startup floor -> zero.
  EXPECT_DOUBLE_EQ(harvested_power_w(cfg, 20.0), 0.0);
}

TEST_F(HarvestAwareTest, CreditLandsOnTheNonCarrierEnd) {
  const auto raw = map_.available_best_rate(0.3);
  const auto adjusted = harvest_adjusted_candidates(map_, 0.3);
  ASSERT_EQ(adjusted.size(), raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    switch (raw[i].mode) {
      case phy::LinkMode::Backscatter:
        EXPECT_LT(adjusted[i].tx_power_w, raw[i].tx_power_w);
        EXPECT_DOUBLE_EQ(adjusted[i].rx_power_w, raw[i].rx_power_w);
        break;
      case phy::LinkMode::PassiveRx:
        EXPECT_LT(adjusted[i].rx_power_w, raw[i].rx_power_w);
        EXPECT_DOUBLE_EQ(adjusted[i].tx_power_w, raw[i].tx_power_w);
        break;
      case phy::LinkMode::Active:
        EXPECT_EQ(adjusted[i], raw[i]);
        break;
    }
  }
}

TEST_F(HarvestAwareTest, CloseRangeTagIsEnergyNeutral) {
  // At 15 cm the banked ~70 uW exceed the tag's draw entirely: the
  // adjusted tag power clamps to (near) zero, so the achievable
  // drain-ratio span explodes.
  const auto adjusted = harvest_adjusted_candidates(map_, 0.15);
  for (const auto& c : adjusted) {
    if (c.mode == phy::LinkMode::Backscatter) {
      EXPECT_LE(c.tx_power_w, 1e-9);
    }
  }
  // Planner consequence: a vanishing-energy transmitter can still be
  // served power-proportionally at an extreme ratio.
  const auto plan = OffloadPlanner::plan(adjusted, 1.0, 1e7);
  EXPECT_TRUE(plan.proportional);
}

TEST_F(HarvestAwareTest, BreakEvenDistanceIsSubMeter) {
  const double d10k = tag_break_even_distance_m(map_, phy::Bitrate::k10);
  const double d1m = tag_break_even_distance_m(map_, phy::Bitrate::M1);
  EXPECT_GT(d10k, 0.1);
  EXPECT_LT(d10k, 1.0);
  // The faster tag draws more, so it breaks even closer in.
  EXPECT_LE(d1m, d10k);
}

TEST_F(HarvestAwareTest, WeakCarrierShrinksBreakEven) {
  HarvestAwareConfig weak;
  weak.carrier_dbm = 0.0;
  const double strong = tag_break_even_distance_m(map_, phy::Bitrate::k10);
  const double feeble =
      tag_break_even_distance_m(map_, phy::Bitrate::k10, weak);
  EXPECT_LT(feeble, strong);
}

TEST_F(HarvestAwareTest, BeyondBreakEvenCostsStayPositive) {
  const auto adjusted = harvest_adjusted_candidates(map_, 2.0);
  for (const auto& c : adjusted) {
    EXPECT_GT(c.tx_power_w, 0.0);
    EXPECT_GT(c.rx_power_w, 0.0);
  }
}

}  // namespace
}  // namespace braidio::core
