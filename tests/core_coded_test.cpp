#include "core/coded_candidates.hpp"

#include <gtest/gtest.h>

#include "core/offload.hpp"

namespace braidio::core {
namespace {

class CodedTest : public ::testing::Test {
 protected:
  PowerTable table_;
  phy::LinkBudget budget_;
  RegimeMap map_{table_, budget_};
};

TEST_F(CodedTest, CodedRangeExceedsUncoded) {
  for (phy::LinkMode mode :
       {phy::LinkMode::Backscatter, phy::LinkMode::PassiveRx}) {
    for (phy::Bitrate rate : phy::kAllBitrates) {
      EXPECT_GT(coded_range_m(budget_, mode, rate),
                budget_.range_m(mode, rate))
          << phy::to_string(mode) << "@" << phy::to_string(rate);
    }
  }
}

TEST_F(CodedTest, RegimeAExtension) {
  // Headline of the extension: coding pushes the carrier-offload horizon
  // past the uncoded 2.4 m backscatter limit.
  const double uncoded = map_.regime_a_limit_m();
  const double coded = coded_regime_a_limit_m(map_);
  EXPECT_NEAR(uncoded, 2.4, 0.01);
  EXPECT_GT(coded, 2.6);
  EXPECT_LT(coded, 3.2);
}

TEST_F(CodedTest, NoCodedVariantsWhereUncodedLives) {
  // At 0.5 m everything runs uncoded; the candidate set has no coded
  // entries.
  for (const auto& c : candidates_with_coding(map_, 0.5)) {
    EXPECT_FALSE(c.coded);
  }
}

TEST_F(CodedTest, CodedBackscatterAppearsInTheGap) {
  // Between the uncoded (2.4 m) and coded (~2.7 m) backscatter limits, a
  // coded backscatter candidate must appear.
  const auto candidates = candidates_with_coding(map_, 2.55);
  bool saw_coded_backscatter = false;
  for (const auto& c : candidates) {
    if (c.coded && c.candidate.mode == phy::LinkMode::Backscatter) {
      saw_coded_backscatter = true;
      // Per-bit cost inflated by 7/4 over the uncoded table entry.
      const auto& raw =
          table_.candidate(c.candidate.mode, c.candidate.rate);
      EXPECT_NEAR(c.candidate.tx_joules_per_bit() /
                      raw.tx_joules_per_bit(),
                  7.0 / 4.0, 1e-9);
    }
  }
  EXPECT_TRUE(saw_coded_backscatter);
}

TEST_F(CodedTest, CodedCandidatesExtendOffloadInTheGap) {
  // At 2.55 m, an energy-poor transmitter can still shed its carrier via
  // coded backscatter; without coding the planner would clamp.
  const auto coded = candidates_with_coding(map_, 2.55);
  std::vector<ModeCandidate> pool;
  for (const auto& c : coded) pool.push_back(c.candidate);
  const auto plan = OffloadPlanner::plan(pool, 1.0, 500.0);
  EXPECT_TRUE(plan.proportional);

  const auto uncoded_plan =
      OffloadPlanner::plan(map_.available_best_rate(2.55), 1.0, 500.0);
  EXPECT_FALSE(uncoded_plan.proportional);
  // And the poor device comes out ~3x cheaper per bit (coded backscatter
  // at 10 kbps is expensive airtime, so the braid still leans on active
  // for 30% of the bits).
  EXPECT_LT(plan.tx_joules_per_bit, 0.5 * uncoded_plan.tx_joules_per_bit);
}

TEST_F(CodedTest, AvailabilityMatchesRangeBisect) {
  const double r =
      coded_range_m(budget_, phy::LinkMode::Backscatter, phy::Bitrate::k10);
  EXPECT_TRUE(coded_available(budget_, phy::LinkMode::Backscatter,
                              phy::Bitrate::k10, r * 0.98));
  EXPECT_FALSE(coded_available(budget_, phy::LinkMode::Backscatter,
                               phy::Bitrate::k10, r * 1.02));
}

}  // namespace
}  // namespace braidio::core
