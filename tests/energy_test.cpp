#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "energy/battery.hpp"
#include "energy/device_catalog.hpp"
#include "energy/ledger.hpp"
#include "util/contract.hpp"
#include "util/units.hpp"

namespace braidio::energy {
namespace {

TEST(Battery, StartsFullAndConverts) {
  Battery b(util::WattHours(1.0));
  EXPECT_DOUBLE_EQ(b.capacity_joules(), 3600.0);
  EXPECT_DOUBLE_EQ(b.capacity_wh(), 1.0);
  EXPECT_DOUBLE_EQ(b.remaining_joules(), 3600.0);
  EXPECT_DOUBLE_EQ(b.fraction_remaining(), 1.0);
  EXPECT_FALSE(b.empty());
}

TEST(Battery, RejectsNonPositiveCapacity) {
  EXPECT_THROW(Battery(util::WattHours(0.0)), std::invalid_argument);
  EXPECT_THROW(Battery(util::WattHours(-1.0)), std::invalid_argument);
}

TEST(Battery, DrainClampsAtEmpty) {
  Battery b(util::WattHours(0.001));  // 3.6 J
  EXPECT_DOUBLE_EQ(b.drain(util::Joules(1.6)).value(), 1.6);
  EXPECT_DOUBLE_EQ(b.remaining_joules(), 2.0);
  // only what's left
  EXPECT_DOUBLE_EQ(b.drain(util::Joules(5.0)).value(), 2.0);
  EXPECT_TRUE(b.empty());
  EXPECT_DOUBLE_EQ(b.drain(util::Joules(1.0)).value(), 0.0);
  EXPECT_THROW(b.drain(util::Joules(-1.0)), std::invalid_argument);
}

TEST(Battery, SecondsAtPower) {
  Battery b(util::WattHours(1.0));  // 3600 J
  EXPECT_DOUBLE_EQ(b.seconds_at(util::Watts(1.0)).value(), 3600.0);
  EXPECT_DOUBLE_EQ(b.seconds_at(util::Watts(0.129)).value(),
                   3600.0 / 0.129);
  EXPECT_TRUE(std::isinf(b.seconds_at(util::Watts(0.0)).value()));
  EXPECT_THROW(b.seconds_at(util::Watts(-0.1)), std::invalid_argument);
}

TEST(Battery, RechargeRestoresCapacity) {
  Battery b(util::WattHours(0.5));
  b.drain(util::Joules(1000.0));
  b.recharge();
  EXPECT_DOUBLE_EQ(b.fraction_remaining(), 1.0);
}

TEST(DeviceCatalog, HasTheTenFigure1Devices) {
  const auto& catalog = device_catalog();
  ASSERT_EQ(catalog.size(), 10u);
  EXPECT_EQ(catalog.front().name, "Nike Fuel Band");
  EXPECT_EQ(catalog.back().name, "MacBook Pro 15");
}

TEST(DeviceCatalog, OrderedByCapacity) {
  const auto& catalog = device_catalog();
  for (std::size_t i = 1; i < catalog.size(); ++i) {
    EXPECT_LT(catalog[i - 1].battery_wh, catalog[i].battery_wh)
        << catalog[i - 1].name << " vs " << catalog[i].name;
  }
}

TEST(DeviceCatalog, SpanIsThreeOrdersOfMagnitude) {
  // Fig. 1: laptop batteries are ~3 orders of magnitude above fitness
  // bands.
  const double span = catalog_capacity_span();
  EXPECT_GT(span, 100.0);
  EXPECT_LT(span, 1000.0);
  EXPECT_NEAR(std::log10(span), 2.58, 0.35);
}

TEST(DeviceCatalog, LookupByName) {
  const auto phone = find_device("iPhone 6S");
  ASSERT_TRUE(phone.has_value());
  EXPECT_NEAR(phone->battery_wh, 6.55, 1e-9);
  EXPECT_FALSE(find_device("Nokia 3310").has_value());
}

TEST(DeviceCatalog, MakesFullBattery) {
  const auto spec = find_device("Apple Watch");
  ASSERT_TRUE(spec.has_value());
  Battery b = spec->make_battery();
  EXPECT_DOUBLE_EQ(b.capacity_wh(), spec->battery_wh);
}

TEST(Ledger, AccumulatesByCategory) {
  EnergyLedger ledger;
  ledger.charge(EnergyCategory::CarrierGeneration, util::Joules(1.5));
  ledger.charge(EnergyCategory::CarrierGeneration, util::Joules(0.5));
  ledger.charge(EnergyCategory::PassiveRx, util::Joules(0.25));
  EXPECT_DOUBLE_EQ(ledger.joules(EnergyCategory::CarrierGeneration), 2.0);
  EXPECT_DOUBLE_EQ(ledger.joules(EnergyCategory::PassiveRx), 0.25);
  EXPECT_DOUBLE_EQ(ledger.joules(EnergyCategory::Idle), 0.0);
  EXPECT_DOUBLE_EQ(ledger.total_joules(), 2.25);
}

TEST(Ledger, NanSimTimeSentinelIsAccepted) {
  // NaN sim time is the documented "caller tracks no sim time" sentinel;
  // it must keep working (it is the charge() default argument).
  EnergyLedger ledger;
  ledger.charge(EnergyCategory::Mcu, util::Joules(1.0),
                util::Seconds::nan());
  EXPECT_DOUBLE_EQ(ledger.total_joules(), 1.0);
}

#if BRAIDIO_CONTRACTS_ENABLED

TEST(LedgerDeathTest, RejectsNegativeAndNonFiniteJoules) {
  // A NaN posting used to slip through the old `joules < 0` throw check
  // (NaN compares false) and silently poison every downstream total.
  EnergyLedger ledger;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DEATH(ledger.charge(EnergyCategory::Mcu, util::Joules(-1.0)),
               "REQUIRE");
  EXPECT_DEATH(ledger.charge(EnergyCategory::Mcu, util::Joules(nan)),
               "REQUIRE");
  EXPECT_DEATH(ledger.charge(EnergyCategory::Mcu, util::Joules(inf)),
               "REQUIRE");
}

TEST(LedgerDeathTest, RejectsNonFiniteOrNegativeSimTime) {
  EnergyLedger ledger;
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DEATH(ledger.charge(EnergyCategory::Mcu, util::Joules(1.0),
                             util::Seconds(inf)),
               "REQUIRE");
  EXPECT_DEATH(ledger.charge(EnergyCategory::Mcu, util::Joules(1.0),
                             util::Seconds(-2.0)),
               "REQUIRE");
}

#endif  // BRAIDIO_CONTRACTS_ENABLED

TEST(Ledger, MergeAndClear) {
  EnergyLedger a, b;
  a.charge(EnergyCategory::ActiveTx, util::Joules(1.0));
  b.charge(EnergyCategory::ActiveTx, util::Joules(2.0));
  b.charge(EnergyCategory::ModeSwitch, util::Joules(0.1));
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.joules(EnergyCategory::ActiveTx), 3.0);
  EXPECT_DOUBLE_EQ(a.joules(EnergyCategory::ModeSwitch), 0.1);
  a.clear();
  EXPECT_DOUBLE_EQ(a.total_joules(), 0.0);
}

TEST(Ledger, ReportMentionsNonZeroCategoriesOnly) {
  EnergyLedger ledger;
  ledger.charge(EnergyCategory::BackscatterTx, util::Joules(1e-6));
  const auto report = ledger.report();
  EXPECT_NE(report.find("backscatter-tx"), std::string::npos);
  EXPECT_EQ(report.find("active-tx"), std::string::npos);
  EXPECT_NE(report.find("total"), std::string::npos);
}

TEST(Ledger, CategoryNamesAreStable) {
  EXPECT_STREQ(to_string(EnergyCategory::CarrierGeneration), "carrier");
  EXPECT_STREQ(to_string(EnergyCategory::ModeSwitch), "mode-switch");
}

}  // namespace
}  // namespace braidio::energy
