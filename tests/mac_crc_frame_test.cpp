#include <gtest/gtest.h>

#include "mac/crc.hpp"
#include "mac/frame.hpp"
#include "mac/probe.hpp"
#include "phy/link_mode.hpp"
#include "util/rng.hpp"

namespace braidio::mac {
namespace {

// ---------- CRC ----------

TEST(Crc16, StandardCheckValue) {
  // CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
  const std::vector<std::uint8_t> data{'1', '2', '3', '4', '5',
                                       '6', '7', '8', '9'};
  EXPECT_EQ(crc16(data), 0x29B1);
}

TEST(Crc32, StandardCheckValue) {
  // CRC-32/IEEE of "123456789" is 0xCBF43926.
  const std::vector<std::uint8_t> data{'1', '2', '3', '4', '5',
                                       '6', '7', '8', '9'};
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

TEST(Crc, EmptyInputs) {
  EXPECT_EQ(crc16(std::span<const std::uint8_t>{}), 0xFFFF);
  EXPECT_EQ(crc32(std::span<const std::uint8_t>{}), 0u);
}

TEST(Crc, IncrementalMatchesOneShot) {
  util::Rng rng(3);
  std::vector<std::uint8_t> data(257);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  const auto head = std::span(data).first(100);
  const auto tail = std::span(data).subspan(100);
  EXPECT_EQ(crc16_update(crc16_update(0xFFFF, head), tail), crc16(data));
}

TEST(Crc, DetectsSingleBitFlips) {
  std::vector<std::uint8_t> data{0xDE, 0xAD, 0xBE, 0xEF, 0x42};
  const auto clean16 = crc16(data);
  const auto clean32 = crc32(data);
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(crc16(data), clean16);
      EXPECT_NE(crc32(data), clean32);
      data[byte] ^= static_cast<std::uint8_t>(1u << bit);
    }
  }
}

// ---------- Frame ----------

Frame sample_frame() {
  Frame f;
  f.type = FrameType::Data;
  f.source = 7;
  f.destination = 9;
  f.sequence = 0xBEEF;
  f.payload = {1, 2, 3, 4, 5};
  return f;
}

TEST(Frame, SerializeDeserializeRoundTrip) {
  const Frame f = sample_frame();
  const auto bytes = serialize(f);
  EXPECT_EQ(bytes.size(), f.wire_size());
  const auto parsed = deserialize(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, f);
}

TEST(Frame, AllTypesRoundTrip) {
  for (auto type : {FrameType::Data, FrameType::Ack, FrameType::Probe,
                    FrameType::ProbeReport, FrameType::BatteryStatus,
                    FrameType::ModeSwitch}) {
    Frame f = sample_frame();
    f.type = type;
    const auto parsed = deserialize(serialize(f));
    ASSERT_TRUE(parsed.has_value()) << to_string(type);
    EXPECT_EQ(parsed->type, type);
  }
}

TEST(Frame, EmptyPayloadAndMaxPayload) {
  Frame f = sample_frame();
  f.payload.clear();
  EXPECT_TRUE(deserialize(serialize(f)).has_value());
  f.payload.assign(kMaxPayloadBytes, 0xFF);
  EXPECT_TRUE(deserialize(serialize(f)).has_value());
  f.payload.assign(kMaxPayloadBytes + 1, 0xFF);
  EXPECT_THROW(serialize(f), std::invalid_argument);
}

TEST(Frame, RejectsCorruptionAnywhere) {
  const auto bytes = serialize(sample_frame());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    auto corrupted = bytes;
    corrupted[i] ^= 0x10;
    // Either rejected outright, or (length-field corruption) size check
    // fails; no corrupted frame may parse equal to the original.
    const auto parsed = deserialize(corrupted);
    if (parsed) {
      EXPECT_NE(*parsed, sample_frame()) << "byte " << i;
    }
  }
}

TEST(Frame, RejectsTruncationAndBadMagic) {
  auto bytes = serialize(sample_frame());
  EXPECT_FALSE(deserialize(std::span(bytes).first(bytes.size() - 1))
                   .has_value());
  EXPECT_FALSE(deserialize(std::span(bytes).first(4)).has_value());
  bytes[0] = 0x0F;  // wrong magic nibble
  EXPECT_FALSE(deserialize(bytes).has_value());
}

TEST(Frame, RejectsUnknownType) {
  auto bytes = serialize(sample_frame());
  bytes[0] = (kFrameMagic << 4) | 0x0E;  // type nibble out of range
  EXPECT_FALSE(deserialize(bytes).has_value());
}

TEST(Frame, WireBitsAccounting) {
  Frame f = sample_frame();
  EXPECT_EQ(f.wire_bits(), (kHeaderBytes + 5 + kCrcBytes) * 8);
}

// ---------- Control payloads ----------

TEST(Probe, RoundTrip) {
  const ProbePayload p{phy::LinkMode::Backscatter, phy::Bitrate::k100, 512};
  const auto parsed = parse_probe(serialize(p));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->mode, p.mode);
  EXPECT_EQ(parsed->rate, p.rate);
  EXPECT_EQ(parsed->token, p.token);
  EXPECT_FALSE(parse_probe(std::vector<std::uint8_t>{1, 2}).has_value());
}

TEST(ProbeReport, RoundTripWithFloats) {
  ProbeReportPayload p;
  p.mode = phy::LinkMode::PassiveRx;
  p.rate = phy::Bitrate::M1;
  p.token = 99;
  p.snr_db = 23.75f;
  p.ber_estimate = 1.5e-3f;
  const auto parsed = parse_probe_report(serialize(p));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FLOAT_EQ(parsed->snr_db, 23.75f);
  EXPECT_FLOAT_EQ(parsed->ber_estimate, 1.5e-3f);
  EXPECT_FALSE(parse_probe_report(std::vector<std::uint8_t>(10)).has_value());
}

TEST(BatteryStatus, RoundTrip) {
  const BatteryStatusPayload p{123456.0f, 42};
  const auto parsed = parse_battery_status(serialize(p));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FLOAT_EQ(parsed->remaining_joules, 123456.0f);
  EXPECT_EQ(parsed->epoch, 42u);
}

TEST(ModeSwitch, RoundTripAndInvalidModeRejected) {
  const ModeSwitchPayload p{phy::LinkMode::Backscatter, phy::Bitrate::k10, 8};
  const auto parsed = parse_mode_switch(serialize(p));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->packets_in_mode, 8u);
  // Invalid packed mode/rate nibbles must be rejected.
  std::vector<std::uint8_t> bad{0xFF, 0, 0};
  EXPECT_FALSE(parse_mode_switch(bad).has_value());
  EXPECT_FALSE(parse_probe(bad).has_value());
}

TEST(ControlPayloads, CarryInsideFrames) {
  Frame f;
  f.type = FrameType::Probe;
  f.payload = serialize(ProbePayload{phy::LinkMode::Active,
                                     phy::Bitrate::k10, 7});
  const auto parsed = deserialize(serialize(f));
  ASSERT_TRUE(parsed.has_value());
  const auto probe = parse_probe(parsed->payload);
  ASSERT_TRUE(probe.has_value());
  EXPECT_EQ(probe->token, 7u);
}

}  // namespace
}  // namespace braidio::mac
