#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace braidio::util {
namespace {

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"mode", "power"});
  t.add_row({"active", "94.56 mW"});
  t.add_row({"backscatter", "36.4 uW"});
  const auto s = t.to_string();
  EXPECT_NE(s.find("mode"), std::string::npos);
  EXPECT_NE(s.find("backscatter"), std::string::npos);
  // Header rule present.
  EXPECT_NE(s.find("---"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TablePrinter, ShortRowsPaddedLongRowsRejected) {
  TablePrinter t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_THROW(t.add_row({"1", "2", "3", "4"}), std::invalid_argument);
  EXPECT_THROW(TablePrinter({}), std::invalid_argument);
}

TEST(TablePrinter, StreamsToOstream) {
  TablePrinter t({"x"});
  t.add_row({"1"});
  std::ostringstream os;
  t.print(os);
  EXPECT_FALSE(os.str().empty());
}

TEST(FormatSiPower, PicksSensibleUnits) {
  EXPECT_EQ(format_si_power(0.129), "129 mW");
  EXPECT_EQ(format_si_power(16.54e-6), "16.54 uW");
  EXPECT_EQ(format_si_power(4.2), "4.2 W");
  EXPECT_EQ(format_si_power(0.0), "0 W");
  EXPECT_EQ(format_si_power(2e-9), "2 nW");
}

TEST(Format, FixedAndScientific) {
  EXPECT_EQ(format_fixed(1.23456, 2), "1.23");
  EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
  const auto s = format_scientific(2546.0, 3);
  EXPECT_NE(s.find("e"), std::string::npos);
}

TEST(Csv, EscapesSpecialCells) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, RendersRowsAndValidatesWidth) {
  CsvWriter w({"d", "ber"});
  w.add_row(std::vector<std::string>{"0.5", "1e-3"});
  w.add_row(std::vector<double>{1.0, 0.01});
  EXPECT_THROW(w.add_row(std::vector<double>{1.0}), std::invalid_argument);
  const auto s = w.to_string();
  EXPECT_EQ(s, "d,ber\n0.5,1e-3\n1,0.01\n");
}

TEST(Csv, WritesFile) {
  CsvWriter w({"x"});
  w.add_row(std::vector<double>{42.0});
  const std::string path = ::testing::TempDir() + "/braidio_csv_test.csv";
  w.write_file(path);
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "x");
  std::remove(path.c_str());
  EXPECT_THROW(w.write_file("/nonexistent-dir/x.csv"), std::runtime_error);
}

TEST(Log, LevelGateWorks) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  // Dropping below the gate must not crash and must not emit.
  ::testing::internal::CaptureStderr();
  BRAIDIO_LOG_INFO << "hidden";
  BRAIDIO_LOG_ERROR << "visible";
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("hidden"), std::string::npos);
  EXPECT_NE(err.find("visible"), std::string::npos);
  set_log_level(before);
}

}  // namespace
}  // namespace braidio::util
