// Cross-module integration: the event-driven protocol session must agree
// with the fluid lifetime model, and the circuit/RF substrates must be
// consistent with the calibrated PHY abstractions built on top of them.
#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "circuits/charge_pump.hpp"
#include "circuits/comparator.hpp"
#include "circuits/inst_amp.hpp"
#include "circuits/netlist.hpp"
#include "circuits/transient.hpp"
#include "core/braided_link.hpp"
#include "core/braidio_radio.hpp"
#include "core/lifetime_sim.hpp"
#include "phy/waveform.hpp"
#include "rf/phase_field.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace braidio {
namespace {

TEST(Integration, EventSimulatorTracksFluidModelPerBitCosts) {
  // Run the packetized protocol for a while and compare each device's
  // measured per-delivered-bit energy against the fluid plan's prediction.
  core::PowerTable table;
  phy::LinkBudget budget;
  core::RegimeMap regimes(table, budget);
  core::BraidioRadio a("phone", 1, util::WattHours(6.55), table);
  core::BraidioRadio b("watch", 2, util::WattHours(0.78), table);
  const double e1 = a.battery().remaining_joules();
  const double e2 = b.battery().remaining_joules();

  core::BraidedLinkConfig cfg;
  cfg.distance_m = 0.4;
  cfg.packets_per_slot = 32;
  core::BraidedLink link(a, b, regimes, cfg);
  const auto stats = link.run(8192);
  ASSERT_GT(stats.payload_bits_delivered, 0.0);

  core::LifetimeSimulator sim(table, budget);
  core::LifetimeConfig fluid;
  fluid.distance_m = 0.4;
  const auto outcome =
      sim.braidio(util::Joules(e1), util::Joules(e2), fluid);

  const double measured_d1 =
      (e1 - a.battery().remaining_joules()) / stats.payload_bits_delivered;
  const double measured_d2 =
      (e2 - b.battery().remaining_joules()) / stats.payload_bits_delivered;
  // Protocol overhead (9 header+CRC bytes and an ack per 32-byte payload,
  // plus two 150 us half-duplex turnarounds per exchange) multiplies the
  // fluid per-bit energies by ~3x. The multiplier must be bounded, nearly
  // equal at both ends (overhead time is symmetric), and the planned
  // asymmetry direction must survive.
  const double m1 = measured_d1 / outcome.plan.tx_joules_per_bit;
  const double m2 = measured_d2 / outcome.plan.rx_joules_per_bit;
  EXPECT_GT(m1, 1.5);
  EXPECT_LT(m1, 4.5);
  EXPECT_GT(m2, 1.5);
  EXPECT_LT(m2, 4.5);
  EXPECT_NEAR(m1 / m2, 1.0, 0.35);
  EXPECT_GT(measured_d1, measured_d2);  // phone pays more: it is richer
}

TEST(Integration, ChargePumpBoostConsistentWithDetectorModel) {
  // The behavioural EnvelopeDetector assumes ~2x pump boost; the circuit-
  // level Dickson simulation must deliver that within diode losses.
  circuits::ChargePump pump;
  const auto run = pump.simulate(20e-6, 0.0, 8);
  EXPECT_GT(pump.measured_boost(run), 1.6);
  EXPECT_LE(pump.measured_boost(run), 2.0);
}

TEST(Integration, PumpOutputImpedanceSuitsTheInstAmp) {
  // Sec. 3.2's tuning constraint, checked end to end: the pump's output
  // impedance against the INA2331 input must cost < 3 dB of signal.
  circuits::ChargePump pump;
  circuits::InstAmp amp;
  const double zout = pump.output_impedance_ohms();
  const double g = amp.effective_gain(zout, 10e3);  // 10 kbps data band
  EXPECT_GT(g, amp.config().gain * 0.7);
}

TEST(Integration, PhaseFieldNullsMatchWaveformBehaviour) {
  // Where the field simulation says theta ~ pi/2, the waveform simulator
  // must fail; where theta ~ 0, it must succeed.
  rf::PhaseField field;
  phy::LinkBudget budget;
  // Find a null and a healthy point along a line.
  double null_x = 0.0, good_x = 0.0;
  double worst = 1e300, best = -1e300;
  const auto rx = field.config().receive_antenna;
  for (double x = rx.x + 0.3; x <= rx.x + 1.2; x += 0.002) {
    const double snr = field.snr_db({x, 0.5}, rx);
    if (snr < worst) {
      worst = snr;
      null_x = x;
    }
    if (snr > best) {
      best = snr;
      good_x = x;
    }
  }
  const double theta_null = field.cancellation_angle({null_x, 0.5}, rx);
  const double theta_good = field.cancellation_angle({good_x, 0.5}, rx);
  EXPECT_GT(theta_null, 1.45);  // ~pi/2
  EXPECT_LT(theta_good, 0.8);

  phy::WaveformSimConfig wf;
  wf.mode = phy::LinkMode::Backscatter;
  wf.rate = phy::Bitrate::M1;
  wf.distance_m = 0.5;
  wf.bits = 5000;
  wf.cancellation_angle_rad = theta_null;
  EXPECT_GT(phy::simulate_waveform(budget, wf).measured_ber, 0.2);
  wf.cancellation_angle_rad = theta_good;
  EXPECT_LT(phy::simulate_waveform(budget, wf).measured_ber, 1e-3);
}

TEST(Integration, LifetimeMatrixAgreesWithDirectPlanComputation) {
  // Spot-check one Fig. 15 cell computed two independent ways.
  core::PowerTable table;
  phy::LinkBudget budget;
  core::LifetimeSimulator sim(table, budget);
  const auto tx = energy::find_device("Pebble Watch");
  const auto rx = energy::find_device("Nexus 6P");
  ASSERT_TRUE(tx && rx);
  core::LifetimeConfig cfg;
  cfg.distance_m = 0.5;
  cfg.include_switch_overhead = false;
  const double gain = sim.gain_vs_bluetooth(*tx, *rx, cfg);

  // Independent: plan + closed forms.
  core::RegimeMap regimes(table, budget);
  const auto plan = core::OffloadPlanner::plan(
      regimes.available_best_rate(0.5), util::wh_to_joules(tx->battery_wh),
      util::wh_to_joules(rx->battery_wh));
  const double braid_bits = plan.bits_until_depletion(
      util::wh_to_joules(tx->battery_wh), util::wh_to_joules(rx->battery_wh));
  const double bt_bits = sim.bluetooth_bits(
      util::to_joules(util::WattHours(tx->battery_wh)),
      util::to_joules(util::WattHours(rx->battery_wh)), false);
  EXPECT_NEAR(gain, braid_bits / bt_bits, 1e-6);
}

TEST(Integration, EndToEndEnergyConservation) {
  // Ledger totals must equal battery drain exactly for both radios.
  core::PowerTable table;
  phy::LinkBudget budget;
  core::RegimeMap regimes(table, budget);
  core::BraidioRadio a("a", 1, util::WattHours(0.26), table);
  core::BraidioRadio b("b", 2, util::WattHours(0.48), table);
  const double e1 = a.battery().remaining_joules();
  const double e2 = b.battery().remaining_joules();
  core::BraidedLinkConfig cfg;
  cfg.distance_m = 1.0;
  core::BraidedLink link(a, b, regimes, cfg);
  link.run(512);
  EXPECT_NEAR(a.ledger().total_joules(),
              e1 - a.battery().remaining_joules(), 1e-9);
  EXPECT_NEAR(b.ledger().total_joules(),
              e2 - b.battery().remaining_joules(), 1e-9);
}

TEST(Integration, OokBitsSurviveTheRealDicksonPump) {
  // Golden-path cross-validation: build the actual charge-pump netlist,
  // drive it with an OOK-keyed RF source (1 MHz demo carrier, 20 kbps
  // data), and recover the bits from the simulated output voltage with
  // the comparator model. This closes the loop between the circuit-level
  // and behavioural receive chains.
  using namespace circuits;
  const std::vector<std::uint8_t> bits{1, 0, 1, 1, 0, 0, 1, 0, 1, 1};
  const double bit_period = 50e-6;  // 20 kbps on a 1 MHz demo carrier
  const double carrier_hz = 1e6;

  Netlist net;
  const NodeId in = net.add_node("rf");
  net.add_voltage_source(in, 0, [&](double t) {
    const auto idx = std::min<std::size_t>(
        static_cast<std::size_t>(t / bit_period), bits.size() - 1);
    const double amp = bits[idx] ? 1.0 : 0.15;  // keyed carrier
    return amp * std::sin(2.0 * std::numbers::pi * carrier_hz * t);
  });
  // Fast single-stage pump: small caps so the envelope settles within a
  // bit period (the Table 4 "reduced Cs and Cp" configuration).
  const NodeId mid = net.add_node("mid");
  const NodeId out = net.add_node("out");
  net.add_capacitor(in, mid, 20e-12);
  Diode clamp;
  clamp.anode = 0;
  clamp.cathode = mid;
  net.add_diode(clamp);
  Diode series;
  series.anode = mid;
  series.cathode = out;
  net.add_diode(series);
  net.add_capacitor(out, 0, 20e-12);
  net.add_resistor(out, 0, 1e6);

  TransientOptions opts;
  opts.timestep_s = 2.5e-8;
  TransientSimulator sim(net, opts);
  const auto run = sim.run(bit_period * static_cast<double>(bits.size()), 8);

  // Slice the output at 3/4 of each bit period with a mid-level threshold.
  double hi = -1e9, lo = 1e9;
  for (const auto& s : run.samples) {
    hi = std::max(hi, s.node_volts[out]);
    lo = std::min(lo, s.node_volts[out]);
  }
  circuits::ComparatorConfig cc;
  cc.threshold_volts = 0.5 * (hi + lo);
  cc.hysteresis_volts = 0.05 * (hi - lo);
  circuits::Comparator comparator(cc);
  std::vector<std::uint8_t> decoded;
  std::size_t next_bit = 0;
  for (const auto& s : run.samples) {
    const bool out_state = comparator.step(s.node_volts[out]);
    const double sample_at =
        (static_cast<double>(next_bit) + 0.75) * bit_period;
    if (next_bit < bits.size() && s.time_s >= sample_at) {
      decoded.push_back(out_state ? 1 : 0);
      ++next_bit;
    }
  }
  ASSERT_EQ(decoded.size(), bits.size());
  EXPECT_EQ(decoded, bits);
}

TEST(Integration, TransientSolverHandlesRandomResistorLadders) {
  // Property: arbitrary resistor ladders must match the analytic
  // voltage-divider solution at steady state.
  using namespace circuits;
  util::Rng rng(0xFEED);
  for (int trial = 0; trial < 25; ++trial) {
    const int stages = 2 + static_cast<int>(rng.uniform_int(0, 4));
    Netlist net;
    const NodeId src = net.add_node("src");
    net.add_voltage_source(src, 0, dc_waveform(10.0));
    NodeId prev = src;
    std::vector<double> series_r;
    std::vector<NodeId> taps;
    for (int k = 0; k < stages; ++k) {
      const NodeId tap = net.add_node();
      const double r = rng.uniform(100.0, 10'000.0);
      net.add_resistor(prev, tap, r);
      series_r.push_back(r);
      taps.push_back(tap);
      prev = tap;
    }
    const double r_end = rng.uniform(100.0, 10'000.0);
    net.add_resistor(prev, 0, r_end);
    series_r.push_back(r_end);

    TransientSimulator sim(net, {.timestep_s = 1e-6});
    const auto result = sim.run(1e-5);
    // Analytic: simple series chain, V(tap_k) = 10 * R_below / R_total.
    double total = 0.0;
    for (double r : series_r) total += r;
    double below = total;
    for (std::size_t k = 0; k < taps.size(); ++k) {
      below -= series_r[k];
      EXPECT_NEAR(result.steady_state(taps[k]), 10.0 * below / total, 1e-6)
          << "trial " << trial << " tap " << k;
    }
  }
}

}  // namespace
}  // namespace braidio
