#include "sim/faults/impairment.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "sim/faults/fault_timeline.hpp"

namespace braidio::sim::faults {
namespace {

TEST(FaultTimeline, ValidatesAndSortsEvents) {
  std::vector<FaultEvent> events;
  events.push_back({FaultKind::Shadowing, 5.0, 1.0, 10.0, 0.0, kTargetBoth});
  events.push_back({FaultKind::CarrierDropout, 1.0, 0.5, 0.0, 0.0,
                    kTargetBoth});
  const FaultTimeline timeline{events};
  ASSERT_EQ(timeline.size(), 2u);
  EXPECT_EQ(timeline.events()[0].kind, FaultKind::CarrierDropout);
  EXPECT_EQ(timeline.events()[1].kind, FaultKind::Shadowing);
}

TEST(FaultTimeline, RejectsBadEvents) {
  // Windowed events need a positive duration.
  EXPECT_THROW(FaultTimeline({{FaultKind::Shadowing, 0.0, 0.0, 10.0, 0.0,
                               kTargetBoth}}),
               std::invalid_argument);
  // Negative start time.
  EXPECT_THROW(FaultTimeline({{FaultKind::CarrierDropout, -1.0, 1.0, 0.0,
                               0.0, kTargetBoth}}),
               std::invalid_argument);
  // Shadowing loss must be >= 0 dB.
  EXPECT_THROW(FaultTimeline({{FaultKind::Shadowing, 0.0, 1.0, -3.0, 0.0,
                               kTargetBoth}}),
               std::invalid_argument);
  // Distance jumps need a positive distance.
  EXPECT_THROW(FaultTimeline({{FaultKind::DistanceJump, 0.0, 0.0, 0.0, 0.0,
                               kTargetBoth}}),
               std::invalid_argument);
  // Brownouts need a valid target.
  EXPECT_THROW(FaultTimeline({{FaultKind::Brownout, 0.0, 0.0, 1.0, 0.0,
                               7}}),
               std::invalid_argument);
}

TEST(FaultTimeline, StartingInUsesHalfOpenInterval) {
  const auto timeline = FaultTimeline::periodic_bursts(
      FaultKind::CarrierDropout, 3, 1.0, 1.0, 0.25, 0.0);
  // (t0, t1]: the edge at t = 1 belongs to the interval ending at 1.
  EXPECT_EQ(timeline.starting_in(0.0, 1.0).size(), 1u);
  EXPECT_EQ(timeline.starting_in(1.0, 3.0).size(), 2u);
  EXPECT_TRUE(timeline.starting_in(3.0, 10.0).empty());
  EXPECT_TRUE(timeline.starting_in(0.0, 0.5).empty());
}

TEST(FaultTimeline, ParsesTheTextFormat) {
  std::istringstream in(
      "# demo schedule\n"
      "shadowing 1.0 2.0 12\n"
      "interferer 2.0 1.0 -45 250e3\n"
      "dropout 4.0 0.5\n"
      "fade 5.0 1.0 8 2e-3\n"
      "distance 6.0 1.5\n"
      "brownout 7.0 0.25 b\n");
  std::string error;
  const auto timeline = FaultTimeline::parse(in, &error);
  ASSERT_TRUE(timeline.has_value()) << error;
  ASSERT_EQ(timeline->size(), 6u);
  EXPECT_EQ(timeline->events()[0].kind, FaultKind::Shadowing);
  EXPECT_EQ(timeline->events()[1].kind, FaultKind::Interferer);
  EXPECT_DOUBLE_EQ(timeline->events()[1].param, 250e3);
  EXPECT_EQ(timeline->events()[5].kind, FaultKind::Brownout);
  EXPECT_EQ(timeline->events()[5].target, kTargetB);
}

TEST(FaultTimeline, ParseReportsLineNumbersOnErrors) {
  std::istringstream in("dropout 0 1\nshadowing nonsense\n");
  std::string error;
  const auto timeline = FaultTimeline::parse(in, &error);
  EXPECT_FALSE(timeline.has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

TEST(FaultTimeline, PeriodicBurstsAreDeterministicAndOrdered) {
  const auto a = FaultTimeline::periodic_bursts(FaultKind::Shadowing, 4,
                                                0.5, 2.0, 0.1, 20.0);
  const auto b = FaultTimeline::periodic_bursts(FaultKind::Shadowing, 4,
                                                0.5, 2.0, 0.1, 20.0);
  ASSERT_EQ(a.size(), 4u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.events()[i].start_s, b.events()[i].start_s);
    EXPECT_DOUBLE_EQ(a.events()[i].start_s, 0.5 + 2.0 * double(i));
  }
}

TEST(ImpairmentSchedule, SuperposesOverlappingWindows) {
  std::vector<FaultEvent> events;
  events.push_back({FaultKind::Shadowing, 1.0, 4.0, 10.0, 0.0, kTargetBoth});
  events.push_back({FaultKind::Shadowing, 2.0, 1.0, 5.0, 0.0, kTargetBoth});
  events.push_back({FaultKind::CarrierDropout, 4.0, 0.5, 0.0, 0.0,
                    kTargetBoth});
  const ImpairmentSchedule schedule{FaultTimeline{events}};
  EXPECT_DOUBLE_EQ(schedule.state_at(0.5).extra_loss_db, 0.0);
  EXPECT_DOUBLE_EQ(schedule.state_at(1.5).extra_loss_db, 10.0);
  EXPECT_DOUBLE_EQ(schedule.state_at(2.5).extra_loss_db, 15.0);
  EXPECT_DOUBLE_EQ(schedule.state_at(3.5).extra_loss_db, 10.0);
  EXPECT_FALSE(schedule.state_at(3.5).carrier_dropout);
  EXPECT_TRUE(schedule.state_at(4.25).carrier_dropout);
  EXPECT_FALSE(schedule.state_at(10.0).impaired());
}

TEST(ImpairmentSchedule, FadeBurstDeepestWindowGoverns) {
  std::vector<FaultEvent> events;
  events.push_back({FaultKind::FadeBurst, 0.0, 2.0, 6.0, 1e-3, kTargetBoth});
  events.push_back({FaultKind::FadeBurst, 1.0, 2.0, 12.0, 4e-3,
                    kTargetBoth});
  const ImpairmentSchedule schedule{FaultTimeline{events}};
  const auto early = schedule.state_at(0.5);
  EXPECT_TRUE(early.fade_active);
  EXPECT_DOUBLE_EQ(early.fade_depth_db, 6.0);
  const auto overlap = schedule.state_at(1.5);
  EXPECT_DOUBLE_EQ(overlap.fade_depth_db, 12.0);
  EXPECT_DOUBLE_EQ(overlap.fade_coherence_s, 4e-3);
}

TEST(ImpairmentSchedule, LatestDistanceJumpWins) {
  std::vector<FaultEvent> events;
  events.push_back({FaultKind::DistanceJump, 1.0, 0.0, 1.5, 0.0,
                    kTargetBoth});
  events.push_back({FaultKind::DistanceJump, 3.0, 0.0, 0.7, 0.0,
                    kTargetBoth});
  const ImpairmentSchedule schedule{FaultTimeline{events}};
  EXPECT_FALSE(schedule.state_at(0.5).distance_m.has_value());
  EXPECT_DOUBLE_EQ(schedule.state_at(2.0).distance_m.value(), 1.5);
  EXPECT_DOUBLE_EQ(schedule.state_at(5.0).distance_m.value(), 0.7);
}

TEST(ImpairmentSchedule, BrownoutAccountingByTargetAndWindow) {
  std::vector<FaultEvent> events;
  events.push_back({FaultKind::Brownout, 1.0, 0.0, 0.5, 0.0, kTargetA});
  events.push_back({FaultKind::Brownout, 2.0, 0.0, 0.25, 0.0, kTargetB});
  events.push_back({FaultKind::Brownout, 3.0, 0.0, 0.1, 0.0, kTargetBoth});
  const ImpairmentSchedule schedule{FaultTimeline{events}};
  EXPECT_DOUBLE_EQ(schedule.brownout_joules(0.0, 5.0, kTargetA), 0.6);
  EXPECT_DOUBLE_EQ(schedule.brownout_joules(0.0, 5.0, kTargetB), 0.35);
  // Half-open window: the edge at t = 1 is consumed by the step ending
  // there, not the one starting there.
  EXPECT_DOUBLE_EQ(schedule.brownout_joules(0.0, 1.0, kTargetA), 0.5);
  EXPECT_DOUBLE_EQ(schedule.brownout_joules(1.0, 5.0, kTargetA), 0.1);
}

TEST(ImpairmentSchedule, InterfererPenaltyGrowsWithPower) {
  FaultEvent weak{FaultKind::Interferer, 0.0, 1.0, -70.0, 100e3,
                  kTargetBoth};
  FaultEvent strong{FaultKind::Interferer, 0.0, 1.0, -40.0, 100e3,
                    kTargetBoth};
  const ImpairmentSchedule schedule{
      FaultTimeline{{weak, strong}}};
  const double weak_db = schedule.interferer_penalty_db(weak);
  const double strong_db = schedule.interferer_penalty_db(strong);
  EXPECT_GE(weak_db, 0.0);
  EXPECT_GT(strong_db, weak_db);
  // And the schedule's superposed loss reflects it while active.
  EXPECT_NEAR(schedule.state_at(0.5).extra_loss_db, weak_db + strong_db,
              1e-12);
}

// ---------- node-scoped events (`@<id>`, network simulator) ----------

TEST(FaultTimeline, ParsesNodeScopes) {
  std::istringstream in(
      "shadowing 1 2 12 @3\n"
      "dropout 0 5 @1\n"
      "interferer 2 1 -45 250e3 @0\n"
      "brownout 7 0.25 b @4\n"
      "fade 5 1 8 @2\n"
      "distance 6 1.5\n");
  std::string error;
  const auto timeline = FaultTimeline::parse(in, &error);
  ASSERT_TRUE(timeline.has_value()) << error;
  ASSERT_EQ(timeline->size(), 6u);
  // Sorted by start: dropout@1, shadowing@3, interferer@0, fade@2,
  // distance (broadcast), brownout b@4.
  EXPECT_EQ(timeline->events()[0].node, 1);
  EXPECT_EQ(timeline->events()[1].node, 3);
  EXPECT_EQ(timeline->events()[2].node, 0);
  EXPECT_EQ(timeline->events()[3].node, 2);
  EXPECT_EQ(timeline->events()[4].node, kNodeBroadcast);
  EXPECT_EQ(timeline->events()[5].node, 4);
  EXPECT_EQ(timeline->events()[5].target, kTargetB);  // composes with @
}

TEST(FaultTimeline, RejectsBadNodeScopes) {
  const char* bad[] = {
      "dropout 0 1 @x\n",       // non-numeric id
      "dropout 0 1 @-2\n",      // negative id
      "dropout 0 1 @\n",        // empty id
      "dropout 0 1 @1 junk\n",  // trailing tokens after the scope
      "dropout 0 1 @1x\n",      // junk glued to the id
  };
  for (const char* text : bad) {
    std::istringstream in(text);
    std::string error;
    EXPECT_FALSE(FaultTimeline::parse(in, &error).has_value()) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(ImpairmentSchedule, NodeScopedQueryFiltersByTarget) {
  std::vector<FaultEvent> events;
  // Broadcast shadowing everyone sees, plus a dropout only node 2 sees.
  events.push_back({FaultKind::Shadowing, 0.0, 10.0, 6.0, 0.0, kTargetBoth});
  FaultEvent dropout{FaultKind::CarrierDropout, 0.0, 10.0, 0.0, 0.0,
                     kTargetBoth};
  dropout.node = 2;
  events.push_back(dropout);
  const ImpairmentSchedule schedule{FaultTimeline{std::move(events)}};

  const ImpairmentState at_node2 = schedule.state_at(5.0, 2);
  EXPECT_TRUE(at_node2.carrier_dropout);
  EXPECT_DOUBLE_EQ(at_node2.extra_loss_db, 6.0);

  const ImpairmentState at_node1 = schedule.state_at(5.0, 1);
  EXPECT_FALSE(at_node1.carrier_dropout);  // targeted: invisible elsewhere
  EXPECT_DOUBLE_EQ(at_node1.extra_loss_db, 6.0);  // broadcast: visible

  // The legacy single-link view applies every event regardless of scope.
  const ImpairmentState legacy = schedule.state_at(5.0);
  EXPECT_TRUE(legacy.carrier_dropout);
  EXPECT_DOUBLE_EQ(legacy.extra_loss_db, 6.0);
}

TEST(ImpairmentSchedule, BroadcastTimelineMatchesLegacyView) {
  // With no node-scoped events the two overloads must agree everywhere.
  std::vector<FaultEvent> events;
  events.push_back({FaultKind::Shadowing, 1.0, 2.0, 9.0, 0.0, kTargetBoth});
  events.push_back(
      {FaultKind::CarrierDropout, 4.0, 0.5, 0.0, 0.0, kTargetBoth});
  const ImpairmentSchedule schedule{FaultTimeline{std::move(events)}};
  for (const double t : {0.5, 1.5, 3.5, 4.25, 6.0}) {
    for (const int node : {0, 1, 7}) {
      const ImpairmentState scoped = schedule.state_at(t, node);
      const ImpairmentState legacy = schedule.state_at(t);
      EXPECT_EQ(scoped.carrier_dropout, legacy.carrier_dropout);
      EXPECT_DOUBLE_EQ(scoped.extra_loss_db, legacy.extra_loss_db);
      EXPECT_EQ(scoped.fade_active, legacy.fade_active);
    }
  }
}

}  // namespace
}  // namespace braidio::sim::faults
