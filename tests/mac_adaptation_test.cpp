#include "mac/link_adaptation.hpp"
#include "util/units.hpp"

#include <gtest/gtest.h>

#include "phy/link_budget.hpp"

namespace braidio::mac {
namespace {

TEST(SnrEstimator, FirstSampleSeedsEstimate) {
  SnrEstimator est;
  EXPECT_FALSE(est.snr_db().has_value());
  est.update(20.0, util::Seconds(0.0));
  ASSERT_TRUE(est.snr_db().has_value());
  EXPECT_DOUBLE_EQ(*est.snr_db(), 20.0);
  EXPECT_DOUBLE_EQ(est.last_innovation_db(), 0.0);
}

TEST(SnrEstimator, EwmaSmoothing) {
  SnrEstimator est(0.25);
  est.update(20.0, util::Seconds(0.0));
  est.update(12.0, util::Seconds(1.0));  // big drop
  EXPECT_DOUBLE_EQ(*est.snr_db(), 20.0 + 0.25 * (12.0 - 20.0));
  EXPECT_DOUBLE_EQ(est.last_innovation_db(), 8.0);
  // Converges toward a sustained level.
  for (int i = 0; i < 50; ++i) est.update(12.0, util::Seconds(2.0 + i));
  EXPECT_NEAR(*est.snr_db(), 12.0, 0.01);
}

TEST(SnrEstimator, StalenessClock) {
  SnrEstimator est;
  // No sample yet: always stale.
  EXPECT_TRUE(est.stale(util::Seconds(0.0), util::Seconds(1.0)));
  est.update(15.0, util::Seconds(10.0));
  EXPECT_FALSE(est.stale(util::Seconds(10.5), util::Seconds(1.0)));
  EXPECT_TRUE(est.stale(util::Seconds(12.0), util::Seconds(1.0)));
  est.reset();
  EXPECT_TRUE(est.stale(util::Seconds(10.5), util::Seconds(1.0)));
  EXPECT_THROW(SnrEstimator(0.0), std::invalid_argument);
  EXPECT_THROW(SnrEstimator(1.5), std::invalid_argument);
}

// Requirement model for the selector tests: 1M needs 20 dB, 100k 14 dB,
// 10k 8 dB.
double need(phy::Bitrate rate) {
  switch (rate) {
    case phy::Bitrate::M1: return 20.0;
    case phy::Bitrate::k100: return 14.0;
    case phy::Bitrate::k10: return 8.0;
  }
  return 0.0;
}

TEST(RateSelector, PicksHighestSustainableRate) {
  RateSelector sel;
  EXPECT_EQ(sel.select(25.0, need), phy::Bitrate::M1);
  EXPECT_EQ(sel.select(16.0, need), phy::Bitrate::k100);
  EXPECT_EQ(sel.select(9.0, need), phy::Bitrate::k10);
  EXPECT_FALSE(sel.select(5.0, need).has_value());
}

TEST(RateSelector, HysteresisBlocksPingPong) {
  RateSelector sel({.target_ber = 0.01, .up_margin_db = 3.0});
  // Settle at 100k.
  EXPECT_EQ(sel.select(15.0, need), phy::Bitrate::k100);
  // SNR creeps just past the 1M requirement: upgrade needs 20+3 dB.
  EXPECT_EQ(sel.select(21.0, need), phy::Bitrate::k100);
  EXPECT_EQ(sel.select(22.9, need), phy::Bitrate::k100);
  // Clear margin: upgrade.
  EXPECT_EQ(sel.select(23.5, need), phy::Bitrate::M1);
  // Downgrades are immediate (no margin): protects the link.
  EXPECT_EQ(sel.select(19.0, need), phy::Bitrate::k100);
}

TEST(RateSelector, ResetClearsHysteresisState) {
  RateSelector sel;
  sel.select(15.0, need);
  sel.reset();
  EXPECT_FALSE(sel.current().has_value());
  // Fresh selector takes 21 dB at face value (no upgrade margin applies).
  EXPECT_EQ(sel.select(21.0, need), phy::Bitrate::M1);
  EXPECT_THROW(RateSelector({.target_ber = 0.0, .up_margin_db = 1.0}),
               std::invalid_argument);
}

TEST(RateSelector, DrivesOffTheRealLinkBudget) {
  // End-to-end: requirements derived from the calibrated budget at a given
  // distance reproduce the Fig. 13 rate steps.
  phy::LinkBudget budget;
  RateSelector sel;
  auto pick = [&](double d) {
    // Work in received-power space: a rate is sustainable when the
    // received power exceeds its calibrated floor plus the demodulator's
    // required SNR.
    auto need_fn = [&](phy::Bitrate rate) {
      return budget.noise_floor_dbm(phy::LinkMode::Backscatter, rate) +
             phy::required_snr_db(
                 phy::LinkBudget::ber_model(phy::LinkMode::Backscatter),
                 0.01);
    };
    const double rx_dbm =
        budget.received_power_dbm(phy::LinkMode::Backscatter, d);
    return sel.select(rx_dbm, need_fn);
  };
  sel.reset();
  EXPECT_EQ(pick(0.5), phy::Bitrate::M1);
  EXPECT_EQ(pick(1.2), phy::Bitrate::k100);
  EXPECT_EQ(pick(2.0), phy::Bitrate::k10);
  EXPECT_FALSE(pick(3.0).has_value());
}

}  // namespace
}  // namespace braidio::mac
