#include "core/braided_link.hpp"
#include "core/braidio_radio.hpp"
#include "util/units.hpp"

#include <gtest/gtest.h>

#include <utility>

#include "sim/faults/fault_timeline.hpp"
#include "sim/faults/impairment.hpp"

namespace braidio::core {
namespace {

struct Rig {
  PowerTable table;
  phy::LinkBudget budget;
  RegimeMap regimes{table, budget};
  BraidioRadio a{"phone", 1, util::WattHours(6.55), table};
  BraidioRadio b{"watch", 2, util::WattHours(0.78), table};
};

TEST(BraidedLink, DeliversAllPacketsOnCleanLink) {
  Rig rig;
  BraidedLinkConfig cfg;
  cfg.distance_m = 0.4;
  BraidedLink link(rig.a, rig.b, rig.regimes, cfg);
  const auto stats = link.run(256);
  EXPECT_EQ(stats.data_packets_offered, 256u);
  EXPECT_EQ(stats.data_packets_delivered, 256u);
  EXPECT_EQ(stats.data_packets_dropped, 0u);
  EXPECT_DOUBLE_EQ(stats.payload_bits_delivered, 256.0 * 32 * 8);
  EXPECT_GT(stats.elapsed_s, 0.0);
  EXPECT_GE(stats.replans, 1u);
  EXPECT_FALSE(stats.last_plan.empty());
}

TEST(BraidedLink, ExecutedScheduleMatchesPlanFractions) {
  Rig rig;
  BraidedLinkConfig cfg;
  cfg.distance_m = 0.4;
  cfg.packets_per_slot = 32;
  BraidedLink link(rig.a, rig.b, rig.regimes, cfg);
  const auto stats = link.run(2048);
  const auto& plan = link.current_plan();
  ASSERT_FALSE(plan.entries.empty());
  // Airtime-weighted execution: convert planned bit fractions to expected
  // airtime shares and compare against the recorded mode airtime.
  double total_air = 0.0;
  for (const auto& [label, s] : stats.mode_airtime_s) total_air += s;
  double planned_air = 0.0;
  for (const auto& e : plan.entries) {
    planned_air += e.fraction / e.candidate.bits_per_second();
  }
  for (const auto& e : plan.entries) {
    const auto it = stats.mode_airtime_s.find(e.candidate.label());
    ASSERT_NE(it, stats.mode_airtime_s.end()) << e.candidate.label();
    const double expected_share =
        (e.fraction / e.candidate.bits_per_second()) / planned_air;
    // Control airtime (setup, probes) perturbs the shares slightly.
    EXPECT_NEAR(it->second / total_air, expected_share, 0.08)
        << e.candidate.label();
  }
}

TEST(BraidedLink, ProportionalDrainAcrossTheRun) {
  Rig rig;
  const double e1 = rig.a.battery().remaining_joules();
  const double e2 = rig.b.battery().remaining_joules();
  BraidedLinkConfig cfg;
  cfg.distance_m = 0.4;
  BraidedLink link(rig.a, rig.b, rig.regimes, cfg);
  link.run(4096);
  const double d1 = e1 - rig.a.battery().remaining_joules();
  const double d2 = e2 - rig.b.battery().remaining_joules();
  ASSERT_GT(d1, 0.0);
  ASSERT_GT(d2, 0.0);
  // Drain ratio tracks the energy ratio (8.4:1) within protocol overhead.
  EXPECT_NEAR((d1 / d2) / (e1 / e2), 1.0, 0.25);
}

TEST(BraidedLink, FallsBackToActiveUnderInjectedLoss) {
  Rig rig;
  BraidedLinkConfig cfg;
  cfg.distance_m = 0.85;      // backscatter@1M is marginal here...
  cfg.extra_loss_db = 12.0;   // ...and injected shadowing kills it
  cfg.packets_per_slot = 8;
  // watch -> phone: the plan leans on backscatter, which the injected loss
  // breaks, forcing the Sec. 4.2 fallback to the active link.
  BraidedLink link(rig.b, rig.a, rig.regimes, cfg);
  const auto stats = link.run(512);
  EXPECT_GT(stats.fallbacks, 0u);
  // The session oscillates between probing the planned mode and the active
  // fallback, so throughput survives the injected loss.
  EXPECT_GT(stats.delivery_ratio(), 0.35);
  EXPECT_GT(stats.mode_airtime_s.count("active@1M"), 0u);
}

TEST(BraidedLink, TinyBatteryDiesMidRunAndStopsCleanly) {
  PowerTable table;
  phy::LinkBudget budget;
  RegimeMap regimes(table, budget);
  BraidioRadio big("phone", 1, util::WattHours(6.55), table);
  BraidioRadio tiny("coin", 2, util::WattHours(2e-6), table);  // 7.2 mJ
  BraidedLinkConfig cfg;
  cfg.distance_m = 0.4;
  BraidedLink link(big, tiny, regimes, cfg);
  const auto stats = link.run(1u << 30);  // far more than the battery allows
  EXPECT_TRUE(tiny.battery().empty());
  EXPECT_LT(stats.data_packets_offered, 1u << 30);
}

TEST(BraidedLink, RetransmissionsAppearOnMarginalLink) {
  Rig rig;
  BraidedLinkConfig cfg;
  cfg.distance_m = 1.75;  // backscatter@100k near its edge
  cfg.packets_per_slot = 16;
  cfg.seed = 9;
  // watch -> phone leans on the marginal backscatter link.
  BraidedLink link(rig.b, rig.a, rig.regimes, cfg);
  const auto stats = link.run(512);
  EXPECT_GT(stats.retransmissions, 0u);
  EXPECT_GT(stats.delivery_ratio(), 0.6);  // ARQ + fallback keep it moving
}

TEST(BraidedLink, BlockFadingStressRun) {
  Rig rig;
  BraidedLinkConfig cfg;
  cfg.distance_m = 0.8;
  cfg.block_fading = true;
  cfg.packets_per_slot = 8;
  BraidedLink link(rig.a, rig.b, rig.regimes, cfg);
  const auto stats = link.run(1024);
  // Fading costs some packets but the session survives and keeps moving.
  EXPECT_GT(stats.delivery_ratio(), 0.7);
  EXPECT_EQ(stats.data_packets_offered, 1024u);
}

TEST(BraidedLink, ControlPlaneCostsAreAccounted) {
  Rig rig;
  BraidedLinkConfig cfg;
  cfg.distance_m = 0.4;
  BraidedLink link(rig.a, rig.b, rig.regimes, cfg);
  const auto stats = link.run(16);
  // Setup: 2 battery frames + 3 probes + 3 reports minimum.
  EXPECT_GE(stats.control_frames, 8u);
}

TEST(BraidedLink, ConfigValidation) {
  Rig rig;
  BraidedLinkConfig cfg;
  cfg.packets_per_slot = 0;
  EXPECT_THROW(BraidedLink(rig.a, rig.b, rig.regimes, cfg),
               std::invalid_argument);
}

TEST(BraidedLink, DeterministicForSeed) {
  auto run_once = [](std::uint64_t seed) {
    Rig rig;
    BraidedLinkConfig cfg;
    cfg.distance_m = 1.7;
    cfg.seed = seed;
    BraidedLink link(rig.a, rig.b, rig.regimes, cfg);
    return link.run(256);
  };
  const auto a = run_once(5);
  const auto b = run_once(5);
  EXPECT_EQ(a.data_packets_delivered, b.data_packets_delivered);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_DOUBLE_EQ(a.elapsed_s, b.elapsed_s);
}

TEST(BraidedLink, BidirectionalSplitsTrafficEvenly) {
  Rig rig;
  BraidedLinkConfig cfg;
  cfg.distance_m = 0.4;
  cfg.bidirectional = true;
  BraidedLink link(rig.a, rig.b, rig.regimes, cfg);
  const auto stats = link.run(1024);
  EXPECT_EQ(stats.data_packets_offered, 1024u);
  // Equal split within one packet.
  EXPECT_NEAR(stats.payload_bits_delivered,
              stats.payload_bits_delivered_reverse,
              32.0 * 8.0 + 1e-9);
  EXPECT_GT(stats.delivery_ratio(), 0.99);
  // The plan is a bidirectional composite.
  ASSERT_FALSE(link.current_plan().entries.empty());
  EXPECT_TRUE(link.current_plan().entries.front().reverse.has_value());
}

TEST(BraidedLink, BidirectionalProportionalDrain) {
  Rig rig;
  const double e1 = rig.a.battery().remaining_joules();
  const double e2 = rig.b.battery().remaining_joules();
  BraidedLinkConfig cfg;
  cfg.distance_m = 0.4;
  cfg.bidirectional = true;
  // Long dwells amortize the per-slot role-switch costs that bidirectional
  // braiding adds on top of the plan.
  cfg.packets_per_slot = 64;
  BraidedLink link(rig.a, rig.b, rig.regimes, cfg);
  link.run(8192);
  const double d1 = e1 - rig.a.battery().remaining_joules();
  const double d2 = e2 - rig.b.battery().remaining_joules();
  ASSERT_GT(d1, 0.0);
  ASSERT_GT(d2, 0.0);
  // Switch overhead and protocol framing skew the small device's share;
  // the drain ratio must still clearly track the 8.4:1 energy ratio.
  const double ratio = d1 / d2;
  EXPECT_GT(ratio, 0.55 * (e1 / e2));
  EXPECT_LT(ratio, 1.45 * (e1 / e2));
}

TEST(BraidedLink, BidirectionalSmallDeviceMostlyAvoidsTheCarrier) {
  // phone <-> watch: the watch transmits as a tag (backscatter) and
  // receives on the envelope detector (passive) for the bulk of the
  // traffic; proportionality still hands it the carrier for a small
  // slice (it must burn its fair 1/8.4 share somewhere).
  Rig rig;
  BraidedLinkConfig cfg;
  cfg.distance_m = 0.4;
  cfg.bidirectional = true;
  BraidedLink link(rig.a, rig.b, rig.regimes, cfg);
  link.run(512);
  const auto& plan = link.current_plan();
  double watch_carrier_fraction = 0.0;
  for (const auto& e : plan.entries) {
    // Forward = phone -> watch: the watch holds the carrier only in
    // backscatter-forward; reverse = watch -> phone: only in
    // passive-reverse.
    if (e.candidate.mode == phy::LinkMode::Backscatter) {
      watch_carrier_fraction += 0.5 * e.fraction;
    }
    if (e.reverse && e.reverse->mode == phy::LinkMode::PassiveRx) {
      watch_carrier_fraction += 0.5 * e.fraction;
    }
  }
  EXPECT_LT(watch_carrier_fraction, 0.25);
  EXPECT_GT(watch_carrier_fraction, 0.0);
}

TEST(BraidedLink, RetransmissionCountExactlyMatchesRetryBudget) {
  // Off-by-one regression: at 100% loss every packet makes 1 + 7 attempts
  // but only 7 of them are retransmissions. The seed also counted the
  // refused 8th on_timeout() call, reporting 8 per packet.
  Rig rig;
  const sim::faults::ImpairmentSchedule schedule{sim::faults::FaultTimeline{
      {{sim::faults::FaultKind::CarrierDropout, 0.0, 1e9, 0.0, 0.0,
        sim::faults::kTargetBoth}}}};
  BraidedLinkConfig cfg;
  cfg.distance_m = 0.4;
  cfg.impairments = &schedule;
  BraidedLink link(rig.a, rig.b, rig.regimes, cfg);
  const auto stats = link.run(12);
  EXPECT_EQ(stats.data_packets_delivered, 0u);
  EXPECT_EQ(stats.data_packets_dropped, 12u);
  EXPECT_EQ(stats.retransmissions, 12u * 7u);
}

TEST(BraidedLink, AckTimeoutListenWindowIsCharged) {
  // Energy-ledger regression: the seed charged nothing for the listen
  // window after a lost exchange, so a dead link cost the same energy and
  // time as the airtime alone. A longer configured timeout must now cost
  // strictly more time and strictly more battery on the identical run.
  const sim::faults::ImpairmentSchedule schedule{sim::faults::FaultTimeline{
      {{sim::faults::FaultKind::CarrierDropout, 0.0, 1e9, 0.0, 0.0,
        sim::faults::kTargetBoth}}}};
  const auto run_with_timeout = [&](double timeout_s) {
    Rig rig;
    BraidedLinkConfig cfg;
    cfg.distance_m = 0.4;
    cfg.seed = 3;
    cfg.impairments = &schedule;
    cfg.ack_timeout = util::Seconds(timeout_s);
    // Fixed backoff base so only the timeout term differs between runs.
    cfg.backoff_base = util::Seconds(1e-4);
    BraidedLink link(rig.a, rig.b, rig.regimes, cfg);
    const auto stats = link.run(8);
    const double drained = rig.a.battery().capacity_joules() -
                           rig.a.battery().remaining_joules();
    return std::pair<double, double>{stats.elapsed_s, drained};
  };
  const auto [short_elapsed, short_drained] = run_with_timeout(1e-3);
  const auto [long_elapsed, long_drained] = run_with_timeout(10e-3);
  // 8 packets x 8 attempts x 9 ms of extra listening = 576 ms minimum gap.
  EXPECT_GT(long_elapsed, short_elapsed + 0.5);
  EXPECT_GT(long_drained, short_drained);
}

TEST(BraidedLink, FallbackHysteresisIgnoresASingleLossySlot) {
  // One sustained outage burst long enough to ruin a single schedule slot
  // but not two consecutive ones. The seed's edge-triggered rule
  // (trigger = 1) falls back and replans; the default hysteresis
  // (trigger = 2) must ride it out without thrashing the plan.
  const auto run_with_trigger = [](unsigned trigger_slots) {
    Rig rig;
    const sim::faults::ImpairmentSchedule schedule{
        sim::faults::FaultTimeline{
            {{sim::faults::FaultKind::CarrierDropout, 0.05, 0.2, 0.0, 0.0,
              sim::faults::kTargetBoth}}}};
    BraidedLinkConfig cfg;
    cfg.distance_m = 0.4;
    cfg.packets_per_slot = 8;
    cfg.seed = 5;
    cfg.impairments = &schedule;
    cfg.fallback_trigger_slots = trigger_slots;
    BraidedLink link(rig.a, rig.b, rig.regimes, cfg);
    return link.run(512);
  };
  const auto edge = run_with_trigger(1);
  const auto hysteresis = run_with_trigger(2);
  EXPECT_GE(edge.fallbacks, 1u);
  EXPECT_EQ(hysteresis.fallbacks, 0u);
  // Both variants recover: the outage costs packets, not the session.
  EXPECT_GT(hysteresis.delivery_ratio(), 0.8);
}

TEST(BraidedLink, HysteresisConfigValidation) {
  Rig rig;
  BraidedLinkConfig cfg;
  cfg.fallback_trigger_slots = 0;
  EXPECT_THROW(BraidedLink(rig.a, rig.b, rig.regimes, cfg),
               std::invalid_argument);
  BraidedLinkConfig jitter_cfg;
  jitter_cfg.backoff_jitter = 1.0;
  EXPECT_THROW(BraidedLink(rig.a, rig.b, rig.regimes, jitter_cfg),
               std::invalid_argument);
}

TEST(BraidedLink, DistanceJumpFaultDegradesTheLink) {
  // A mid-run jump far out of range: everything before the jump delivers,
  // everything after is lost, and the activation is counted.
  Rig rig;
  const sim::faults::ImpairmentSchedule schedule{sim::faults::FaultTimeline{
      {{sim::faults::FaultKind::DistanceJump, 0.5, 0.0, 50.0, 0.0,
        sim::faults::kTargetBoth}}}};
  BraidedLinkConfig cfg;
  cfg.distance_m = 0.4;
  cfg.impairments = &schedule;
  BraidedLink link(rig.a, rig.b, rig.regimes, cfg);
  const auto stats = link.run(2048);
  EXPECT_EQ(stats.fault_activations, 1u);
  EXPECT_GT(stats.data_packets_delivered, 0u);
  EXPECT_GT(stats.data_packets_dropped, 0u);
}

}  // namespace
}  // namespace braidio::core
