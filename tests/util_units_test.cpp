#include "util/units.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace braidio::util {
namespace {

TEST(Units, DbmToWattsKnownPoints) {
  EXPECT_DOUBLE_EQ(dbm_to_watts(0.0), 1e-3);
  EXPECT_DOUBLE_EQ(dbm_to_watts(30.0), 1.0);
  EXPECT_NEAR(dbm_to_watts(13.0), 19.95e-3, 0.05e-3);  // SI4432 carrier
  EXPECT_NEAR(dbm_to_watts(-30.0), 1e-6, 1e-12);
}

TEST(Units, WattsToDbmKnownPoints) {
  EXPECT_DOUBLE_EQ(watts_to_dbm(1e-3), 0.0);
  EXPECT_DOUBLE_EQ(watts_to_dbm(1.0), 30.0);
  EXPECT_NEAR(watts_to_dbm(0.129), 21.1, 0.05);  // Braidio carrier end
}

TEST(Units, WattsToDbmRejectsNonPositive) {
  EXPECT_THROW(watts_to_dbm(0.0), std::domain_error);
  EXPECT_THROW(watts_to_dbm(-1.0), std::domain_error);
}

TEST(Units, DbLinearInversePair) {
  for (double db : {-40.0, -6.0, 0.0, 3.0, 20.0, 50.0}) {
    EXPECT_NEAR(linear_to_db(db_to_linear(db)), db, 1e-9);
  }
}

TEST(Units, LinearToDbRejectsNonPositive) {
  EXPECT_THROW(linear_to_db(0.0), std::domain_error);
  EXPECT_THROW(linear_to_db(-2.0), std::domain_error);
}

TEST(Units, WhJoulesRoundTrip) {
  EXPECT_DOUBLE_EQ(wh_to_joules(1.0), 3600.0);
  EXPECT_DOUBLE_EQ(joules_to_wh(3600.0), 1.0);
  EXPECT_DOUBLE_EQ(joules_to_wh(wh_to_joules(99.5)), 99.5);
}

TEST(Units, PowerScaleHelpers) {
  EXPECT_DOUBLE_EQ(mw_to_watts(129.0), 0.129);
  EXPECT_DOUBLE_EQ(uw_to_watts(16.0), 16e-6);
  EXPECT_DOUBLE_EQ(watts_to_mw(0.129), 129.0);
  EXPECT_DOUBLE_EQ(watts_to_uw(16e-6), 16.0);
}

TEST(Units, WavelengthAt915MHz) {
  EXPECT_NEAR(wavelength_m(915e6), 0.3276, 1e-3);
  EXPECT_THROW(wavelength_m(0.0), std::domain_error);
}

TEST(Units, ThermalNoiseFloor) {
  // kTB at 290 K over 1 MHz is about -114 dBm.
  const double n = thermal_noise_watts(1e6);
  EXPECT_NEAR(watts_to_dbm(n), -113.97, 0.1);
  EXPECT_DOUBLE_EQ(thermal_noise_watts(0.0), 0.0);
  EXPECT_THROW(thermal_noise_watts(-1.0), std::domain_error);
}

// -------------------------------------------------------------------
// Strong unit types (Quantity<Tag>).
// -------------------------------------------------------------------

TEST(Quantity, ConstructionAndExtraction) {
  const Joules j{1.25};
  EXPECT_DOUBLE_EQ(j.value(), 1.25);
  EXPECT_DOUBLE_EQ(Joules{}.value(), 0.0);
  EXPECT_TRUE(std::isnan(Seconds::nan().value()));
}

TEST(Quantity, SameUnitArithmetic) {
  const Joules a{3.0}, b{1.5};
  EXPECT_EQ(a + b, Joules{4.5});
  EXPECT_EQ(a - b, Joules{1.5});
  EXPECT_EQ(-a, Joules{-3.0});
  EXPECT_DOUBLE_EQ(a / b, 2.0);  // like-unit ratio is dimensionless
  EXPECT_EQ(a * 2.0, Joules{6.0});
  EXPECT_EQ(2.0 * a, Joules{6.0});
  EXPECT_EQ(a / 2.0, Joules{1.5});
  Joules acc{1.0};
  acc += Joules{2.0};
  acc -= Joules{0.5};
  EXPECT_EQ(acc, Joules{2.5});
}

TEST(Quantity, ComparisonsAndNanOrdering) {
  EXPECT_LT(Seconds{1.0}, Seconds{2.0});
  EXPECT_GE(Watts{0.129}, Watts{0.129});
  // partial_ordering: NaN compares unordered, never equal.
  EXPECT_FALSE(Seconds::nan() == Seconds::nan());
  EXPECT_FALSE(Seconds::nan() < Seconds{0.0});
  EXPECT_FALSE(Seconds::nan() > Seconds{0.0});
}

TEST(Quantity, DimensionalRelations) {
  // E = P * t and rearrangements, bit-identical to raw double math.
  EXPECT_EQ(Watts{0.129} * Seconds{10.0}, Joules{0.129 * 10.0});
  EXPECT_EQ(Seconds{10.0} * Watts{0.129}, Joules{0.129 * 10.0});
  EXPECT_EQ(Joules{1.29} / Seconds{10.0}, Watts{1.29 / 10.0});
  EXPECT_EQ(Joules{1.29} / Watts{0.129}, Seconds{1.29 / 0.129});
}

TEST(Quantity, CheckedConversionsMatchDoubleHelpers) {
  // The typed conversions route through the double helpers, so results
  // are bit-identical — the migration contract for telemetry baselines.
  for (double wh : {0.26, 0.78, 6.55, 99.5}) {
    EXPECT_EQ(to_joules(WattHours(wh)).value(), wh_to_joules(wh));
    EXPECT_EQ(to_watt_hours(Joules(wh_to_joules(wh))).value(),
              joules_to_wh(wh_to_joules(wh)));
    EXPECT_DOUBLE_EQ(to_watt_hours(to_joules(WattHours(wh))).value(), wh);
  }
  for (double dbm : {-30.0, 0.0, 13.0, 21.1}) {
    EXPECT_EQ(to_watts(Dbm(dbm)).value(), dbm_to_watts(dbm));
    EXPECT_NEAR(to_dbm(to_watts(Dbm(dbm))).value(), dbm, 1e-9);
  }
  EXPECT_EQ(to_dbm(Watts(0.129)).value(), watts_to_dbm(0.129));
}

TEST(Quantity, ToDbmRejectsNonPositivePower) {
  EXPECT_THROW(to_dbm(Watts(0.0)), std::domain_error);
  EXPECT_THROW(to_dbm(Watts(-1.0)), std::domain_error);
}

TEST(Quantity, UnitLiterals) {
  EXPECT_EQ(1.5_J, Joules{1.5});
  EXPECT_EQ(2_s, Seconds{2.0});
  EXPECT_EQ(0.129_W, Watts{0.129});
  EXPECT_EQ(-30.0_dBm, Dbm{-30.0});
  EXPECT_EQ(915e6_Hz, Hertz{915e6});
  EXPECT_EQ(0.78_Wh, WattHours{0.78});
}

TEST(Quantity, ConstexprUsable) {
  constexpr Joules e = Watts{2.0} * Seconds{3.0};
  static_assert(e.value() == 6.0);
  static_assert((1.0_Wh).value() == 1.0);
  SUCCEED();
}

class DbRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(DbRoundTrip, DbmWattsInverse) {
  const double dbm = GetParam();
  EXPECT_NEAR(watts_to_dbm(dbm_to_watts(dbm)), dbm, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DbRoundTrip,
                         ::testing::Values(-120.0, -80.0, -40.0, -13.0, 0.0,
                                           13.0, 17.0, 23.0, 30.0));

}  // namespace
}  // namespace braidio::util
