#include "util/units.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace braidio::util {
namespace {

TEST(Units, DbmToWattsKnownPoints) {
  EXPECT_DOUBLE_EQ(dbm_to_watts(0.0), 1e-3);
  EXPECT_DOUBLE_EQ(dbm_to_watts(30.0), 1.0);
  EXPECT_NEAR(dbm_to_watts(13.0), 19.95e-3, 0.05e-3);  // SI4432 carrier
  EXPECT_NEAR(dbm_to_watts(-30.0), 1e-6, 1e-12);
}

TEST(Units, WattsToDbmKnownPoints) {
  EXPECT_DOUBLE_EQ(watts_to_dbm(1e-3), 0.0);
  EXPECT_DOUBLE_EQ(watts_to_dbm(1.0), 30.0);
  EXPECT_NEAR(watts_to_dbm(0.129), 21.1, 0.05);  // Braidio carrier end
}

TEST(Units, WattsToDbmRejectsNonPositive) {
  EXPECT_THROW(watts_to_dbm(0.0), std::domain_error);
  EXPECT_THROW(watts_to_dbm(-1.0), std::domain_error);
}

TEST(Units, DbLinearInversePair) {
  for (double db : {-40.0, -6.0, 0.0, 3.0, 20.0, 50.0}) {
    EXPECT_NEAR(linear_to_db(db_to_linear(db)), db, 1e-9);
  }
}

TEST(Units, LinearToDbRejectsNonPositive) {
  EXPECT_THROW(linear_to_db(0.0), std::domain_error);
  EXPECT_THROW(linear_to_db(-2.0), std::domain_error);
}

TEST(Units, WhJoulesRoundTrip) {
  EXPECT_DOUBLE_EQ(wh_to_joules(1.0), 3600.0);
  EXPECT_DOUBLE_EQ(joules_to_wh(3600.0), 1.0);
  EXPECT_DOUBLE_EQ(joules_to_wh(wh_to_joules(99.5)), 99.5);
}

TEST(Units, PowerScaleHelpers) {
  EXPECT_DOUBLE_EQ(mw_to_watts(129.0), 0.129);
  EXPECT_DOUBLE_EQ(uw_to_watts(16.0), 16e-6);
  EXPECT_DOUBLE_EQ(watts_to_mw(0.129), 129.0);
  EXPECT_DOUBLE_EQ(watts_to_uw(16e-6), 16.0);
}

TEST(Units, WavelengthAt915MHz) {
  EXPECT_NEAR(wavelength_m(915e6), 0.3276, 1e-3);
  EXPECT_THROW(wavelength_m(0.0), std::domain_error);
}

TEST(Units, ThermalNoiseFloor) {
  // kTB at 290 K over 1 MHz is about -114 dBm.
  const double n = thermal_noise_watts(1e6);
  EXPECT_NEAR(watts_to_dbm(n), -113.97, 0.1);
  EXPECT_DOUBLE_EQ(thermal_noise_watts(0.0), 0.0);
  EXPECT_THROW(thermal_noise_watts(-1.0), std::domain_error);
}

class DbRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(DbRoundTrip, DbmWattsInverse) {
  const double dbm = GetParam();
  EXPECT_NEAR(watts_to_dbm(dbm_to_watts(dbm)), dbm, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DbRoundTrip,
                         ::testing::Values(-120.0, -80.0, -40.0, -13.0, 0.0,
                                           13.0, 17.0, 23.0, 30.0));

}  // namespace
}  // namespace braidio::util
