#include "core/prototypes.hpp"

#include <gtest/gtest.h>

#include "core/offload.hpp"

namespace braidio::core {
namespace {

class PrototypesTest : public ::testing::Test {
 protected:
  PowerTable v3_;
};

TEST_F(PrototypesTest, ThreeIterationsInOrder) {
  const auto& protos = prototype_table();
  ASSERT_EQ(protos.size(), 3u);
  // Each iteration cut the backscatter receive budget.
  EXPECT_DOUBLE_EQ(protos[0].backscatter_rx_power_w, 0.640);  // AS3993 COTS
  EXPECT_DOUBLE_EQ(protos[1].backscatter_rx_power_w, 0.240);  // Zero-IF
  EXPECT_DOUBLE_EQ(protos[2].backscatter_rx_power_w, 0.129);  // final
  EXPECT_GT(protos[0].backscatter_rx_power_w,
            protos[1].backscatter_rx_power_w);
  EXPECT_GT(protos[1].backscatter_rx_power_w,
            protos[2].backscatter_rx_power_w);
}

TEST_F(PrototypesTest, CandidatesOverrideOnlyTheReceiveChain) {
  const auto& v1 = prototype_table()[0];
  const auto candidates = prototype_candidates(v1, v3_);
  ASSERT_EQ(candidates.size(), v3_.candidates().size());
  for (const auto& c : candidates) {
    if (c.mode == phy::LinkMode::Backscatter) {
      EXPECT_DOUBLE_EQ(c.rx_power_w, 0.640);
      // Tag side untouched: the Moo tag is already micro-watt class.
      EXPECT_LT(c.tx_power_w, 40e-6);
    } else if (c.mode == phy::LinkMode::Active) {
      EXPECT_EQ(c, v3_.candidate(c.mode, c.rate));
    }
  }
}

TEST_F(PrototypesTest, FinalVersionEqualsCalibratedTable) {
  const auto& v3 = prototype_table()[2];
  const auto candidates = prototype_candidates(v3, v3_);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_EQ(candidates[i], v3_.candidates()[i]);
  }
}

TEST_F(PrototypesTest, DiagonalGainTracksReceiveChainPower) {
  // The decisive experiment: with equal batteries, a braid built on the
  // v1 COTS receive chain (640 mW) burns MORE than Bluetooth; v2 barely
  // breaks even; only v3's 129 mW delivers the paper's ~1.4x diagonal.
  const double bt_per_bit = 94.56e-9;  // Bluetooth TX side at 1 Mbps
  std::vector<double> gains;
  for (const auto& proto : prototype_table()) {
    auto candidates = prototype_candidates(proto, v3_);
    // Full-rate candidates only (the diagonal scenario of Fig. 15).
    std::vector<ModeCandidate> fast;
    for (const auto& c : candidates) {
      if (c.rate == phy::Bitrate::M1) fast.push_back(c);
    }
    const auto plan = OffloadPlanner::plan(fast, 1.0, 1.0);
    gains.push_back(bt_per_bit / plan.tx_joules_per_bit);
  }
  // With an expensive reader end the planner routes around backscatter
  // almost entirely (99%+ active), so v1 degenerates to ~Bluetooth — no
  // benefit, a quarter-kilogram reader's power budget, and nothing gained.
  EXPECT_LT(gains[0], 1.05);  // v1: no better than Bluetooth
  EXPECT_LT(gains[1], 1.2);   // v2: marginal
  EXPECT_GT(gains[2], 1.4);   // v3: the paper's 1.4x+ diagonal win
  EXPECT_GT(gains[1], gains[0]);
  EXPECT_GT(gains[2], gains[1]);
}

TEST_F(PrototypesTest, RatioSpanAlwaysHuge) {
  // All three versions support extreme asymmetry; power, not dynamic
  // range, is what the iterations fixed.
  for (const auto& proto : prototype_table()) {
    const auto [lo, hi] = prototype_ratio_span(proto, v3_);
    EXPECT_LT(lo, 1e-3);
    EXPECT_GT(hi, 1e3);
  }
}

}  // namespace
}  // namespace braidio::core
