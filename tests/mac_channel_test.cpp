#include "mac/packet_channel.hpp"

#include <gtest/gtest.h>

#include "phy/ber.hpp"

namespace braidio::mac {
namespace {

Frame sample_frame(std::size_t payload = 32) {
  Frame f;
  f.type = FrameType::Data;
  f.source = 1;
  f.destination = 2;
  f.sequence = 5;
  f.payload.assign(payload, 0x5A);
  return f;
}

class ChannelTest : public ::testing::Test {
 protected:
  phy::LinkBudget budget_;
};

TEST_F(ChannelTest, CleanLinkDeliversEverything) {
  PacketChannel channel(budget_, {.distance_m = 0.2}, util::Rng(1));
  const Frame f = sample_frame();
  for (int i = 0; i < 200; ++i) {
    const auto got =
        channel.transmit(f, phy::LinkMode::Backscatter, phy::Bitrate::M1);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, f);
  }
  EXPECT_EQ(channel.frames_delivered(), 200u);
  EXPECT_EQ(channel.frames_corrupted(), 0u);
}

TEST_F(ChannelTest, OutOfRangeLinkLosesEverything) {
  PacketChannel channel(budget_, {.distance_m = 3.5}, util::Rng(2));
  const Frame f = sample_frame();
  int delivered = 0;
  for (int i = 0; i < 100; ++i) {
    if (channel.transmit(f, phy::LinkMode::Backscatter, phy::Bitrate::M1)) {
      ++delivered;
    }
  }
  EXPECT_EQ(delivered, 0);
}

TEST_F(ChannelTest, LossRateMatchesPacketErrorModel) {
  PacketChannelConfig cfg;
  cfg.distance_m = 0.88;  // near the backscatter@1M edge: measurable BER
  PacketChannel channel(budget_, cfg, util::Rng(3));
  const Frame f = sample_frame();
  const double ber =
      channel.current_ber(phy::LinkMode::Backscatter, phy::Bitrate::M1);
  ASSERT_GT(ber, 1e-4);
  const double expected_loss =
      phy::packet_error_rate(ber, static_cast<unsigned>(f.wire_bits()));
  const int n = 4000;
  int lost = 0;
  for (int i = 0; i < n; ++i) {
    if (!channel.transmit(f, phy::LinkMode::Backscatter, phy::Bitrate::M1)) {
      ++lost;
    }
  }
  EXPECT_NEAR(static_cast<double>(lost) / n, expected_loss,
              0.05 + 0.2 * expected_loss);
}

TEST_F(ChannelTest, ExtraLossShiftsBer) {
  PacketChannelConfig clean{.distance_m = 0.7};
  PacketChannelConfig shadowed{.distance_m = 0.7};
  shadowed.extra_loss_db = 6.0;
  PacketChannel a(budget_, clean, util::Rng(4));
  PacketChannel b(budget_, shadowed, util::Rng(4));
  EXPECT_LT(a.current_ber(phy::LinkMode::Backscatter, phy::Bitrate::M1),
            b.current_ber(phy::LinkMode::Backscatter, phy::Bitrate::M1));
}

TEST_F(ChannelTest, BlockFadingAddsVariability) {
  // With fading, even a healthy link occasionally faults — and a marginal
  // one occasionally shines. Just verify losses appear at a distance where
  // the static channel is clean.
  PacketChannelConfig cfg{.distance_m = 0.7};
  cfg.block_fading = true;
  PacketChannel channel(budget_, cfg, util::Rng(5));
  const Frame f = sample_frame();
  int lost = 0;
  for (int i = 0; i < 2000; ++i) {
    if (!channel.transmit(f, phy::LinkMode::Backscatter, phy::Bitrate::M1)) {
      ++lost;
    }
  }
  EXPECT_GT(lost, 0);
  EXPECT_LT(lost, 2000);
}

TEST_F(ChannelTest, AirtimeAccounting) {
  const Frame f = sample_frame(32);  // 32 + 7 + 2 bytes = 328 bits
  EXPECT_DOUBLE_EQ(PacketChannel::airtime_s(f, phy::Bitrate::M1), 328e-6);
  EXPECT_DOUBLE_EQ(PacketChannel::airtime_s(f, phy::Bitrate::k10), 32.8e-3);
}

TEST_F(ChannelTest, DistanceCanChangeMidRun) {
  PacketChannel channel(budget_, {.distance_m = 0.3}, util::Rng(6));
  const Frame f = sample_frame();
  EXPECT_TRUE(
      channel.transmit(f, phy::LinkMode::Backscatter, phy::Bitrate::M1)
          .has_value());
  channel.set_distance(5.0);
  EXPECT_DOUBLE_EQ(channel.distance(), 5.0);
  EXPECT_FALSE(
      channel.transmit(f, phy::LinkMode::Backscatter, phy::Bitrate::M1)
          .has_value());
  EXPECT_THROW(channel.set_distance(-1.0), std::invalid_argument);
}

TEST_F(ChannelTest, CorruptionNeverForgesContent) {
  // Whatever survives the channel and the CRC must be byte-identical to
  // what was sent (no silent corruption), modulo the 2^-16 CRC collision
  // risk which this seeded run must not hit.
  PacketChannel channel(budget_, {.distance_m = 0.895}, util::Rng(7));
  const Frame f = sample_frame();
  for (int i = 0; i < 3000; ++i) {
    const auto got =
        channel.transmit(f, phy::LinkMode::Backscatter, phy::Bitrate::M1);
    if (got) {
      EXPECT_EQ(*got, f);
    }
  }
  EXPECT_GT(channel.frames_corrupted(), 0u);
}

}  // namespace
}  // namespace braidio::mac
