#include "mac/packet_channel.hpp"

#include <gtest/gtest.h>

#include <utility>

#include "phy/ber.hpp"
#include "phy/link_budget.hpp"
#include "sim/faults/fault_timeline.hpp"
#include "sim/faults/impairment.hpp"

namespace braidio::mac {
namespace {

Frame sample_frame(std::size_t payload = 32) {
  Frame f;
  f.type = FrameType::Data;
  f.source = 1;
  f.destination = 2;
  f.sequence = 5;
  f.payload.assign(payload, 0x5A);
  return f;
}

class ChannelTest : public ::testing::Test {
 protected:
  phy::LinkBudget budget_;
};

TEST_F(ChannelTest, CleanLinkDeliversEverything) {
  PacketChannel channel(budget_, {.distance_m = 0.2}, util::Rng(1));
  const Frame f = sample_frame();
  for (int i = 0; i < 200; ++i) {
    const auto got =
        channel.transmit(f, phy::LinkMode::Backscatter, phy::Bitrate::M1);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, f);
  }
  EXPECT_EQ(channel.frames_delivered(), 200u);
  EXPECT_EQ(channel.frames_corrupted(), 0u);
}

TEST_F(ChannelTest, OutOfRangeLinkLosesEverything) {
  PacketChannel channel(budget_, {.distance_m = 3.5}, util::Rng(2));
  const Frame f = sample_frame();
  int delivered = 0;
  for (int i = 0; i < 100; ++i) {
    if (channel.transmit(f, phy::LinkMode::Backscatter, phy::Bitrate::M1)) {
      ++delivered;
    }
  }
  EXPECT_EQ(delivered, 0);
}

TEST_F(ChannelTest, LossRateMatchesPacketErrorModel) {
  PacketChannelConfig cfg;
  cfg.distance_m = 0.88;  // near the backscatter@1M edge: measurable BER
  PacketChannel channel(budget_, cfg, util::Rng(3));
  const Frame f = sample_frame();
  const double ber =
      channel.current_ber(phy::LinkMode::Backscatter, phy::Bitrate::M1);
  ASSERT_GT(ber, 1e-4);
  const double expected_loss =
      phy::packet_error_rate(ber, static_cast<unsigned>(f.wire_bits()));
  const int n = 4000;
  int lost = 0;
  for (int i = 0; i < n; ++i) {
    if (!channel.transmit(f, phy::LinkMode::Backscatter, phy::Bitrate::M1)) {
      ++lost;
    }
  }
  EXPECT_NEAR(static_cast<double>(lost) / n, expected_loss,
              0.05 + 0.2 * expected_loss);
}

TEST_F(ChannelTest, ExtraLossShiftsBer) {
  PacketChannelConfig clean{.distance_m = 0.7};
  PacketChannelConfig shadowed{.distance_m = 0.7};
  shadowed.extra_loss_db = 6.0;
  PacketChannel a(budget_, clean, util::Rng(4));
  PacketChannel b(budget_, shadowed, util::Rng(4));
  EXPECT_LT(a.current_ber(phy::LinkMode::Backscatter, phy::Bitrate::M1),
            b.current_ber(phy::LinkMode::Backscatter, phy::Bitrate::M1));
}

TEST_F(ChannelTest, BlockFadingAddsVariability) {
  // With fading, even a healthy link occasionally faults — and a marginal
  // one occasionally shines. Just verify losses appear at a distance where
  // the static channel is clean.
  PacketChannelConfig cfg{.distance_m = 0.7};
  cfg.block_fading = true;
  PacketChannel channel(budget_, cfg, util::Rng(5));
  const Frame f = sample_frame();
  int lost = 0;
  for (int i = 0; i < 2000; ++i) {
    if (!channel.transmit(f, phy::LinkMode::Backscatter, phy::Bitrate::M1)) {
      ++lost;
    }
  }
  EXPECT_GT(lost, 0);
  EXPECT_LT(lost, 2000);
}

TEST_F(ChannelTest, AirtimeAccounting) {
  const Frame f = sample_frame(32);  // 32 + 7 + 2 bytes = 328 bits
  EXPECT_DOUBLE_EQ(PacketChannel::airtime_s(f, phy::Bitrate::M1), 328e-6);
  EXPECT_DOUBLE_EQ(PacketChannel::airtime_s(f, phy::Bitrate::k10), 32.8e-3);
}

TEST_F(ChannelTest, DistanceCanChangeMidRun) {
  PacketChannel channel(budget_, {.distance_m = 0.3}, util::Rng(6));
  const Frame f = sample_frame();
  EXPECT_TRUE(
      channel.transmit(f, phy::LinkMode::Backscatter, phy::Bitrate::M1)
          .has_value());
  channel.set_distance(5.0);
  EXPECT_DOUBLE_EQ(channel.distance(), 5.0);
  EXPECT_FALSE(
      channel.transmit(f, phy::LinkMode::Backscatter, phy::Bitrate::M1)
          .has_value());
  EXPECT_THROW(channel.set_distance(-1.0), std::invalid_argument);
}

TEST_F(ChannelTest, CoherentFadingHoldsAcrossDataAckExchange) {
  // THE bug this PR forecloses: the seed redrew an independent Rayleigh
  // fade for every transmission, so a data frame and the ACK 150 us behind
  // it saw unrelated channels — ACK loss was wildly over-counted in deep
  // fades. With a coherence time >> the turnaround, the ACK must ride the
  // same fade block as its data frame; pairs separated by much more than
  // the coherence time stay independent.
  constexpr double kTurnaroundS = 150e-6;
  constexpr double kPairSpacingS = 50e-3;  // >> tau: pairs decorrelate
  const Frame data = sample_frame();
  Frame ack;
  ack.type = FrameType::Ack;
  ack.source = 2;
  ack.destination = 1;
  const auto run_pairs = [&](double coherence_s) {
    PacketChannelConfig cfg{.distance_m = 0.8};
    cfg.block_fading = true;
    cfg.coherence_time_s = coherence_s;
    PacketChannel channel(budget_, cfg, util::Rng(11));
    int data_ok = 0;
    int both_ok = 0;
    double clock = 0.0;
    const int pairs = 3000;
    for (int i = 0; i < pairs; ++i) {
      channel.set_clock(util::Seconds(clock));
      const bool d = channel
                         .transmit(data, phy::LinkMode::Backscatter,
                                   phy::Bitrate::M1)
                         .has_value();
      channel.set_clock(util::Seconds(clock + kTurnaroundS));
      const bool k = channel
                         .transmit(ack, phy::LinkMode::Backscatter,
                                   phy::Bitrate::M1)
                         .has_value();
      data_ok += d ? 1 : 0;
      both_ok += (d && k) ? 1 : 0;
      clock += kPairSpacingS;
    }
    const double p_data = static_cast<double>(data_ok) / pairs;
    const double p_ack_given_data =
        data_ok > 0 ? static_cast<double>(both_ok) / data_ok : 0.0;
    return std::pair<double, double>{p_data, p_ack_given_data};
  };
  const auto [p_data_old, cond_old] = run_pairs(0.0);   // seed behavior
  const auto [p_data_new, cond_new] = run_pairs(5e-3);  // coherent
  // The marginal data-frame delivery is statistically unchanged...
  EXPECT_NEAR(p_data_new, p_data_old, 0.06);
  // ...but conditioned on the data frame surviving, the coherent channel
  // almost always delivers the ACK too, while the independent redraw
  // re-rolls the fade (measured: ~0.92 coherent vs ~0.49 independent at
  // 0.8 m). Pin the regression gap.
  EXPECT_GT(cond_new, 0.85);
  EXPECT_GT(cond_new, cond_old + 0.30);
}

TEST_F(ChannelTest, CarrierDropoutFaultBlocksEverything) {
  const sim::faults::ImpairmentSchedule schedule{sim::faults::FaultTimeline{
      {{sim::faults::FaultKind::CarrierDropout, 1.0, 1.0, 0.0, 0.0,
        sim::faults::kTargetBoth}}}};
  PacketChannel channel(budget_, {.distance_m = 0.2}, util::Rng(12));
  channel.set_impairments(&schedule);
  const Frame f = sample_frame();
  channel.set_clock(util::Seconds(0.5));  // before the outage
  EXPECT_TRUE(
      channel.transmit(f, phy::LinkMode::Backscatter, phy::Bitrate::M1)
          .has_value());
  // inside the outage: deterministic loss
  channel.set_clock(util::Seconds(1.5));
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(
        channel.transmit(f, phy::LinkMode::Backscatter, phy::Bitrate::M1)
            .has_value());
  }
  channel.set_clock(util::Seconds(2.5));  // after the outage
  EXPECT_TRUE(
      channel.transmit(f, phy::LinkMode::Backscatter, phy::Bitrate::M1)
          .has_value());
}

TEST_F(ChannelTest, ShadowingFaultRaisesLossInsideItsWindow) {
  const sim::faults::ImpairmentSchedule schedule{sim::faults::FaultTimeline{
      {{sim::faults::FaultKind::Shadowing, 10.0, 10.0, 30.0, 0.0,
        sim::faults::kTargetBoth}}}};
  PacketChannel channel(budget_, {.distance_m = 0.7}, util::Rng(13));
  channel.set_impairments(&schedule);
  const Frame f = sample_frame();
  int clean = 0;
  int shadowed = 0;
  channel.set_clock(util::Seconds(1.0));
  for (int i = 0; i < 300; ++i) {
    clean += channel.transmit(f, phy::LinkMode::Backscatter,
                              phy::Bitrate::M1)
                 ? 1
                 : 0;
  }
  channel.set_clock(util::Seconds(15.0));
  for (int i = 0; i < 300; ++i) {
    shadowed += channel.transmit(f, phy::LinkMode::Backscatter,
                                 phy::Bitrate::M1)
                    ? 1
                    : 0;
  }
  // 0.7 m has a small static BER, so the clean window loses a frame or
  // two; the 30 dB shadowing window must be crippling by comparison.
  EXPECT_GT(clean, 280);
  EXPECT_LT(shadowed, 150);
}

TEST_F(ChannelTest, NegativeCoherenceTimeRejected) {
  PacketChannelConfig cfg;
  cfg.coherence_time_s = -1.0;
  EXPECT_THROW(PacketChannel(budget_, cfg, util::Rng(14)),
               std::invalid_argument);
}

TEST_F(ChannelTest, CorruptionNeverForgesContent) {
  // Whatever survives the channel and the CRC must be byte-identical to
  // what was sent (no silent corruption), modulo the 2^-16 CRC collision
  // risk which this seeded run must not hit.
  PacketChannel channel(budget_, {.distance_m = 0.895}, util::Rng(7));
  const Frame f = sample_frame();
  for (int i = 0; i < 3000; ++i) {
    const auto got =
        channel.transmit(f, phy::LinkMode::Backscatter, phy::Bitrate::M1);
    if (got) {
      EXPECT_EQ(*got, f);
    }
  }
  EXPECT_GT(channel.frames_corrupted(), 0u);
}

}  // namespace
}  // namespace braidio::mac
