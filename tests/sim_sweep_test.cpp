// Determinism and structure tests for the sweep engine: serial vs 2-thread
// vs 8-thread runs of a Fig. 15-style device matrix must produce
// byte-identical ResultTables, and the report/export layer must detect
// write failures.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/lifetime_sim.hpp"
#include "sim/result_table.hpp"
#include "sim/run_report.hpp"
#include "sim/scenario.hpp"
#include "sim/sweep_runner.hpp"
#include "util/rng.hpp"

namespace braidio {
namespace {

/// Fig. 15-style matrix: gain_vs_bluetooth over the device catalog.
sim::Scenario fig15_style_scenario(const core::LifetimeSimulator& sim,
                                   const core::LifetimeConfig& cfg) {
  const auto& catalog = energy::device_catalog();
  std::vector<std::string> labels;
  for (const auto& spec : catalog) labels.push_back(spec.name);
  return sim::Scenario(
      "fig15_style", {{"RX", labels}, {"TX", labels}}, {"gain"},
      [&sim, &cfg, &catalog](sim::SweepPoint& p) {
        const auto& rx = catalog[p.axis_index(0)];
        const auto& tx = catalog[p.axis_index(1)];
        const double g = sim.gain_vs_bluetooth(tx, rx, cfg);
        sim::RunRecord record;
        record.cells.push_back(util::format_engineering(g, 3));
        record.numbers.push_back(g);
        return record;
      });
}

/// A stochastic scenario: every point draws from its child stream, so this
/// detects any seeding scheme that depends on evaluation order.
sim::Scenario stochastic_scenario() {
  return sim::Scenario(
      "stochastic", {sim::Axis::indexed("point", 64)}, {"draw"},
      [](sim::SweepPoint& p) {
        double sum = 0.0;
        for (int k = 0; k < 100; ++k) sum += p.rng().gaussian();
        sim::RunRecord record;
        record.cells.push_back(util::format_scientific(sum, 6));
        return record;
      });
}

TEST(SweepDeterminism, MatrixIdenticalAcrossThreadCounts) {
  core::PowerTable table;
  phy::LinkBudget budget;
  core::LifetimeSimulator lifetime(table, budget);
  core::LifetimeConfig cfg;
  cfg.distance_m = 0.5;
  const auto scenario = fig15_style_scenario(lifetime, cfg);

  sim::SweepOptions serial;
  serial.threads = 1;
  const auto reference = sim::SweepRunner(serial).run(scenario);
  EXPECT_EQ(reference.row_count(), 100u);
  EXPECT_EQ(reference.threads_used(), 1u);

  for (unsigned threads : {2u, 8u}) {
    sim::SweepOptions opts;
    opts.threads = threads;
    const auto parallel = sim::SweepRunner(opts).run(scenario);
    EXPECT_EQ(parallel.threads_used(), threads);
    EXPECT_EQ(reference.to_csv(), parallel.to_csv()) << threads;
    EXPECT_EQ(reference.to_json(), parallel.to_json()) << threads;
    EXPECT_EQ(reference.to_printer().to_string(),
              parallel.to_printer().to_string())
        << threads;
  }
}

TEST(SweepDeterminism, StochasticIdenticalAcrossThreadCounts) {
  const auto scenario = stochastic_scenario();
  sim::SweepOptions serial;
  serial.threads = 1;
  const auto reference = sim::SweepRunner(serial).run(scenario);
  for (unsigned threads : {2u, 8u}) {
    sim::SweepOptions opts;
    opts.threads = threads;
    EXPECT_EQ(reference.to_csv(),
              sim::SweepRunner(opts).run(scenario).to_csv())
        << threads;
  }
}

TEST(SweepDeterminism, SeedChangesStochasticOutput) {
  const auto scenario = stochastic_scenario();
  sim::SweepOptions a;
  a.threads = 1;
  sim::SweepOptions b;
  b.threads = 1;
  b.seed = a.seed + 1;
  EXPECT_NE(sim::SweepRunner(a).run(scenario).to_csv(),
            sim::SweepRunner(b).run(scenario).to_csv());
}

TEST(SweepStructure, RowsAreRowMajorOverAxes) {
  sim::Scenario scenario(
      "coords", {{"a", {"a0", "a1"}}, {"b", {"b0", "b1", "b2"}}}, {"idx"},
      [](sim::SweepPoint& p) {
        sim::RunRecord record;
        record.cells.push_back(std::to_string(p.flat_index()));
        return record;
      });
  EXPECT_EQ(scenario.point_count(), 6u);
  sim::SweepOptions opts;
  opts.threads = 2;
  const auto table = sim::SweepRunner(opts).run(scenario);
  ASSERT_EQ(table.row_count(), 6u);
  // Row 4 = a1, b1 (last axis fastest).
  EXPECT_EQ(table.axis_label(4, 0), "a1");
  EXPECT_EQ(table.axis_label(4, 1), "b1");
  EXPECT_EQ(table.record(4).cells.at(0), "4");
  // Pivot puts axis-0 values on rows.
  const auto pivot = table.pivot(0, 1, 0).to_string();
  EXPECT_NE(pivot.find("a \\ b"), std::string::npos);
}

TEST(SweepStructure, MetricsAreTrackedButNotInData) {
  const auto scenario = stochastic_scenario();
  sim::SweepOptions opts;
  opts.threads = 2;
  const auto table = sim::SweepRunner(opts).run(scenario);
  EXPECT_EQ(table.metrics().size(), table.row_count());
  EXPECT_GT(table.total_wall_seconds(), 0.0);
  EXPECT_EQ(table.eval_count(), 64u);
  EXPECT_EQ(table.to_csv().find("wall"), std::string::npos);
  EXPECT_EQ(table.to_json().find("wall"), std::string::npos);
  EXPECT_NE(table.metrics_summary().find("2 threads"), std::string::npos);
}

TEST(SweepStructure, ThreadsFromCliParsesBothForms) {
  const char* argv1[] = {"bench", "--threads", "6"};
  EXPECT_EQ(sim::threads_from_cli(3, const_cast<char**>(argv1)), 6u);
  const char* argv2[] = {"bench", "--threads=12"};
  EXPECT_EQ(sim::threads_from_cli(2, const_cast<char**>(argv2)), 12u);
  const char* argv3[] = {"bench", "--threads=garbage"};
  EXPECT_EQ(sim::threads_from_cli(2, const_cast<char**>(argv3)), 0u);
  const char* argv4[] = {"bench"};
  EXPECT_EQ(sim::threads_from_cli(1, const_cast<char**>(argv4)), 0u);
}

TEST(RunReport, ExportFailureIsDetected) {
  ASSERT_EQ(setenv("BRAIDIO_CSV_DIR",
                   "/nonexistent-braidio-dir/definitely/missing", 1),
            0);
  std::ostringstream echo;
  EXPECT_FALSE(sim::export_artifact("t", ".csv", "a,b\n", echo));
  EXPECT_TRUE(echo.str().empty());
  ASSERT_EQ(unsetenv("BRAIDIO_CSV_DIR"), 0);
}

TEST(RunReport, ExportWritesWhenDirExists) {
  const std::string dir = ::testing::TempDir();
  ASSERT_EQ(setenv("BRAIDIO_CSV_DIR", dir.c_str(), 1), 0);
  std::ostringstream echo;
  EXPECT_TRUE(sim::export_artifact("sim_sweep_test", ".csv", "a,b\n1,2\n",
                                   echo));
  EXPECT_NE(echo.str().find("sim_sweep_test.csv"), std::string::npos);
  std::ifstream in(dir + "/sim_sweep_test.csv");
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), "a,b\n1,2\n");
  ASSERT_EQ(unsetenv("BRAIDIO_CSV_DIR"), 0);
}

TEST(RunReport, ExportNoopWithoutDir) {
  ASSERT_EQ(unsetenv("BRAIDIO_CSV_DIR"), 0);
  std::ostringstream echo;
  EXPECT_TRUE(sim::export_artifact("t", ".csv", "x\n", echo));
  EXPECT_TRUE(echo.str().empty());
}

TEST(RunReport, RendersHeaderChecksAndTables) {
  std::ostringstream os;
  sim::RunReport report(os, "Figure X", "Engine self-test");
  report.note("hello");
  report.check("some quantity", "1.0x", "1.1x");
  const auto table = sim::SweepRunner(sim::SweepOptions{1})
                         .run(stochastic_scenario());
  report.table(table);
  report.metrics(table);
  const std::string out = os.str();
  EXPECT_NE(out.find("Figure X — Engine self-test"), std::string::npos);
  EXPECT_NE(out.find("hello"), std::string::npos);
  EXPECT_NE(out.find("paper: 1.0x"), std::string::npos);
  EXPECT_NE(out.find("ours: 1.1x"), std::string::npos);
  EXPECT_NE(out.find("[sweep]"), std::string::npos);
}

TEST(ChildStreams, StreamSeedIsStableAndDecorrelated) {
  // Pin the derivation rule: changing it silently would re-randomize every
  // recorded experiment.
  const auto s0 = util::Rng::stream_seed(1, 0);
  EXPECT_EQ(s0, util::Rng::stream_seed(1, 0));
  EXPECT_NE(s0, util::Rng::stream_seed(1, 1));
  EXPECT_NE(s0, util::Rng::stream_seed(2, 0));
  // Identical draw sequences from identical (seed, index).
  auto a = util::Rng::stream(7, 3);
  auto b = util::Rng::stream(7, 3);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.uniform(), b.uniform());
  // Adjacent indices diverge immediately.
  auto c = util::Rng::stream(7, 4);
  EXPECT_NE(util::Rng::stream(7, 3).uniform(), c.uniform());
}

}  // namespace
}  // namespace braidio
