#include "core/braidio_radio.hpp"

#include <gtest/gtest.h>

#include "util/units.hpp"

namespace braidio::core {
namespace {

class RadioTest : public ::testing::Test {
 protected:
  PowerTable table_;
  BraidioRadio radio_{"watch", 1, util::WattHours(0.78), table_};
};

TEST_F(RadioTest, StartsIdleAtFloorPower) {
  EXPECT_FALSE(radio_.operating_point().has_value());
  EXPECT_FALSE(radio_.role().has_value());
  EXPECT_DOUBLE_EQ(radio_.power_draw().value(),
                   BraidioRadio::kIdleFloor.value());
  EXPECT_EQ(radio_.name(), "watch");
  EXPECT_EQ(radio_.address(), 1);
}

TEST_F(RadioTest, PowerDrawFollowsRoleAndMode) {
  const auto& bs = table_.candidate(phy::LinkMode::Backscatter,
                                    phy::Bitrate::M1);
  ASSERT_TRUE(radio_.switch_to(bs, Role::DataTransmitter));
  EXPECT_DOUBLE_EQ(radio_.power_draw().value(), bs.tx_power_w);  // tag: ~36 uW
  ASSERT_TRUE(radio_.switch_to(bs, Role::DataReceiver));
  // Carrier side: 129 mW.
  EXPECT_DOUBLE_EQ(radio_.power_draw().value(), bs.rx_power_w);
}

TEST_F(RadioTest, SwitchChargesTable5OverheadOncePerTransition) {
  const auto& active =
      table_.candidate(phy::LinkMode::Active, phy::Bitrate::M1);
  const double before = radio_.battery().remaining_joules();
  ASSERT_TRUE(radio_.switch_to(active, Role::DataTransmitter));
  const double cost1 = before - radio_.battery().remaining_joules();
  EXPECT_NEAR(cost1, table_.switch_overhead(phy::LinkMode::Active).tx_joules,
              1e-12);
  EXPECT_EQ(radio_.mode_switches(), 1u);
  // Same mode + role again: no charge.
  ASSERT_TRUE(radio_.switch_to(active, Role::DataTransmitter));
  EXPECT_EQ(radio_.mode_switches(), 1u);
  EXPECT_NEAR(radio_.battery().remaining_joules(), before - cost1, 1e-12);
  // Rate change within the mode is free too (no RF chain power-down).
  const auto& active_slow =
      table_.candidate(phy::LinkMode::Active, phy::Bitrate::k10);
  ASSERT_TRUE(radio_.switch_to(active_slow, Role::DataTransmitter));
  EXPECT_EQ(radio_.mode_switches(), 1u);
  // Role flip within a mode costs a transition.
  ASSERT_TRUE(radio_.switch_to(active, Role::DataReceiver));
  EXPECT_EQ(radio_.mode_switches(), 2u);
}

TEST_F(RadioTest, AdvanceDrainsBatteryAndLedger) {
  const auto& passive =
      table_.candidate(phy::LinkMode::PassiveRx, phy::Bitrate::M1);
  ASSERT_TRUE(radio_.switch_to(passive, Role::DataTransmitter));
  const double before = radio_.battery().remaining_joules();
  ASSERT_TRUE(radio_.advance(util::Seconds(10.0)));  // holding the carrier
  EXPECT_NEAR(before - radio_.battery().remaining_joules(), 1.29, 1e-9);
  EXPECT_NEAR(
      radio_.ledger().joules(energy::EnergyCategory::CarrierGeneration),
      1.29, 1e-9);
  EXPECT_THROW(radio_.advance(util::Seconds(-1.0)), std::invalid_argument);
}

TEST_F(RadioTest, LedgerCategoriesByModeAndRole) {
  using energy::EnergyCategory;
  const auto& bs = table_.candidate(phy::LinkMode::Backscatter,
                                    phy::Bitrate::M1);
  ASSERT_TRUE(radio_.switch_to(bs, Role::DataTransmitter));
  ASSERT_TRUE(radio_.advance(util::Seconds(1.0)));
  EXPECT_GT(radio_.ledger().joules(EnergyCategory::BackscatterTx), 0.0);
  ASSERT_TRUE(radio_.switch_to(bs, Role::DataReceiver));
  ASSERT_TRUE(radio_.advance(util::Seconds(1.0)));
  EXPECT_GT(radio_.ledger().joules(EnergyCategory::CarrierGeneration), 0.0);
  const auto& active =
      table_.candidate(phy::LinkMode::Active, phy::Bitrate::M1);
  ASSERT_TRUE(radio_.switch_to(active, Role::DataReceiver));
  ASSERT_TRUE(radio_.advance(util::Seconds(1.0)));
  EXPECT_GT(radio_.ledger().joules(EnergyCategory::ActiveRx), 0.0);
  EXPECT_GT(radio_.ledger().joules(EnergyCategory::ModeSwitch), 0.0);
}

TEST_F(RadioTest, BatteryDeathDuringAdvanceGoesIdle) {
  PowerTable table;
  BraidioRadio tiny("band", 2, util::WattHours(1e-6), table);  // 3.6 mJ
  const auto& active = table.candidate(phy::LinkMode::Active,
                                       phy::Bitrate::M1);
  ASSERT_TRUE(tiny.switch_to(active, Role::DataTransmitter));
  // 94.56 mW drains 3.6 mJ in ~38 ms; a 1 s advance must fail.
  EXPECT_FALSE(tiny.advance(util::Seconds(1.0)));
  EXPECT_TRUE(tiny.battery().empty());
  EXPECT_FALSE(tiny.operating_point().has_value());
  EXPECT_DOUBLE_EQ(tiny.power_draw().value(), BraidioRadio::kIdleFloor.value());
}

TEST_F(RadioTest, IdleAdvanceUsesFloor) {
  const double before = radio_.battery().remaining_joules();
  ASSERT_TRUE(radio_.advance(util::Seconds(100.0)));
  EXPECT_NEAR(before - radio_.battery().remaining_joules(),
              100.0 * BraidioRadio::kIdleFloor.value(), 1e-12);
  EXPECT_GT(radio_.ledger().joules(energy::EnergyCategory::Idle), 0.0);
}

TEST_F(RadioTest, GoIdleStopsModeDraw) {
  const auto& active =
      table_.candidate(phy::LinkMode::Active, phy::Bitrate::M1);
  ASSERT_TRUE(radio_.switch_to(active, Role::DataTransmitter));
  radio_.go_idle();
  EXPECT_DOUBLE_EQ(radio_.power_draw().value(),
                   BraidioRadio::kIdleFloor.value());
}

TEST(RoleNames, Stable) {
  EXPECT_STREQ(to_string(Role::DataTransmitter), "tx");
  EXPECT_STREQ(to_string(Role::DataReceiver), "rx");
}

}  // namespace
}  // namespace braidio::core
