#include "core/mobility_sim.hpp"

#include <gtest/gtest.h>

#include "util/units.hpp"

namespace braidio::core {
namespace {

class MobilityTest : public ::testing::Test {
 protected:
  PowerTable table_;
  phy::LinkBudget budget_;
  MobilitySimulator sim_{table_, budget_};
};

TEST(MobilityTraceTest, InterpolatesAndClamps) {
  MobilityTrace trace({{0.0, 1.0}, {10.0, 3.0}, {20.0, 3.0}});
  EXPECT_DOUBLE_EQ(trace.distance_at(util::Seconds(0.0)), 1.0);
  EXPECT_DOUBLE_EQ(trace.distance_at(util::Seconds(5.0)), 2.0);
  EXPECT_DOUBLE_EQ(trace.distance_at(util::Seconds(15.0)), 3.0);
  // Clamp past the end.
  EXPECT_DOUBLE_EQ(trace.distance_at(util::Seconds(99.0)), 3.0);
  EXPECT_DOUBLE_EQ(trace.duration_s(), 20.0);
}

TEST(MobilityTraceTest, Validation) {
  EXPECT_THROW(MobilityTrace({{0.0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(MobilityTrace({{1.0, 1.0}, {2.0, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(MobilityTrace({{0.0, 1.0}, {0.0, 2.0}}),
               std::invalid_argument);
  EXPECT_THROW(MobilityTrace({{0.0, 1.0}, {1.0, -2.0}}),
               std::invalid_argument);
  EXPECT_THROW(
      MobilityTrace::random_walk(2.0, 1.0, 1.4, util::Seconds(60.0), 1),
      std::invalid_argument);
}

TEST(MobilityTraceTest, RandomWalkStaysInBounds) {
  const auto trace =
      MobilityTrace::random_walk(0.3, 5.0, 1.4, util::Seconds(120.0), 7);
  EXPECT_GE(trace.duration_s(), 120.0);
  for (double t = 0.0; t <= trace.duration_s(); t += 0.5) {
    const double d = trace.distance_at(util::Seconds(t));
    EXPECT_GE(d, 0.3 - 1e-9);
    EXPECT_LE(d, 5.0 + 1e-9);
  }
  // Deterministic per seed.
  const auto again =
      MobilityTrace::random_walk(0.3, 5.0, 1.4, util::Seconds(120.0), 7);
  EXPECT_DOUBLE_EQ(trace.distance_at(util::Seconds(33.0)),
                   again.distance_at(util::Seconds(33.0)));
}

TEST_F(MobilityTest, StaticTraceMatchesLifetimeModelRates) {
  // A constant-distance "trace" must reproduce the static planner's
  // throughput and drain over the window.
  MobilityTrace still({{0.0, 0.5}, {100.0, 0.5}});
  MobilitySimConfig cfg;
  const auto outcome = sim_.run(still, cfg);
  ASSERT_FALSE(outcome.samples.empty());
  // All samples in Regime A with the same plan.
  for (const auto& s : outcome.samples) {
    EXPECT_EQ(s.regime, Regime::A);
    EXPECT_EQ(s.plan, outcome.samples.front().plan);
  }
  EXPECT_EQ(outcome.plan_changes, 0u);
  // Throughput ~1 Mbps (full-rate braid) for 100 s.
  EXPECT_NEAR(outcome.total_bits, 1e8, 2e6);
  // Time-limited window: same throughput as Bluetooth, far less watch
  // energy per bit.
  EXPECT_NEAR(outcome.throughput_ratio_vs_bluetooth(), 1.0, 0.02);
  EXPECT_GT(outcome.lifetime_gain_vs_bluetooth(), 2.0);
}

TEST_F(MobilityTest, RegimeCrossingsChangeThePlan) {
  // Walk from 0.4 m out to 4.5 m: the plan must change as backscatter and
  // then high-rate passive drop out.
  MobilityTrace walk({{0.0, 0.4}, {30.0, 4.5}, {40.0, 4.5}});
  MobilitySimConfig cfg;
  const auto outcome = sim_.run(walk, cfg);
  EXPECT_GT(outcome.plan_changes, 1u);
  EXPECT_EQ(outcome.samples.front().regime, Regime::A);
  EXPECT_EQ(outcome.samples.back().regime, Regime::B);
}

TEST_F(MobilityTest, OutOfRangeIdlesTheRadios) {
  MobilityTrace far({{0.0, 30.0}, {10.0, 30.0}});
  MobilitySimConfig cfg;
  const auto outcome = sim_.run(far, cfg);
  EXPECT_DOUBLE_EQ(outcome.total_bits, 0.0);
  for (const auto& s : outcome.samples) {
    EXPECT_FALSE(s.link_up);
  }
  // Only the idle floor drains.
  const auto& last = outcome.samples.back();
  EXPECT_LT(last.device1_joules_used, 1e-3);
}

TEST_F(MobilityTest, EnergyConservationAndMonotonicity) {
  const auto trace =
      MobilityTrace::random_walk(0.3, 5.5, 1.4, util::Seconds(60.0), 3);
  MobilitySimConfig cfg;
  const auto outcome = sim_.run(trace, cfg);
  double prev_bits = -1.0, prev_e1 = -1.0;
  for (const auto& s : outcome.samples) {
    EXPECT_GE(s.bits_so_far, prev_bits);
    EXPECT_GE(s.device1_joules_used, prev_e1);
    prev_bits = s.bits_so_far;
    prev_e1 = s.device1_joules_used;
  }
  // Bounded by the battery.
  EXPECT_LE(outcome.samples.back().device1_joules_used,
            util::wh_to_joules(cfg.e1.value()) + 1e-9);
}

TEST_F(MobilityTest, AsymmetricPairKeepsWinningWhileMoving) {
  // Watch -> phone on a random walk within ~4 m: Braidio must beat
  // Bluetooth over the whole trace even though modes come and go.
  const auto trace =
      MobilityTrace::random_walk(0.3, 4.0, 1.4, util::Seconds(120.0), 11);
  MobilitySimConfig cfg;
  cfg.e1 = util::WattHours(0.78);
  cfg.e2 = util::WattHours(6.55);
  const auto outcome = sim_.run(trace, cfg);
  // Braidio trades some throughput at distance for watch lifetime. The
  // walk spends much of its time beyond the backscatter limit (watch is
  // the transmitter, so only Regime A helps it), diluting the gain — but
  // it must remain a clear win.
  EXPECT_GT(outcome.lifetime_gain_vs_bluetooth(), 1.3);
  EXPECT_LE(outcome.throughput_ratio_vs_bluetooth(), 1.001);
  EXPECT_GT(outcome.replans, 50u);
}

TEST_F(MobilityTest, BidirectionalTrafficSupported) {
  MobilityTrace still({{0.0, 0.5}, {30.0, 0.5}});
  MobilitySimConfig cfg;
  cfg.bidirectional = true;
  const auto outcome = sim_.run(still, cfg);
  EXPECT_GT(outcome.total_bits, 0.0);
  // Bidirectional plans carry reverse legs; summary shows "|rev:".
  EXPECT_NE(outcome.samples.front().plan.find("rev:"), std::string::npos);
}

TEST_F(MobilityTest, RejectsBadConfig) {
  MobilityTrace still({{0.0, 0.5}, {1.0, 0.5}});
  MobilitySimConfig cfg;
  cfg.replan_interval = util::Seconds(0.0);
  EXPECT_THROW(sim_.run(still, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace braidio::core
