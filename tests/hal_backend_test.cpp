// Unit tests for the radio HAL: the link-mode vocabulary, capability
// lattice lookups, the StandardRadio request/confirm state machine, the
// backend registry, and the shipped drivers' declared contracts. The
// per-backend conformance sweep lives in hal_conformance_test.cpp; this
// suite pins the building blocks it is made of.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "backends/backends.hpp"
#include "hal/backend.hpp"
#include "hal/conformance.hpp"
#include "hal/link_mode.hpp"
#include "hal/radio.hpp"
#include "util/units.hpp"

namespace braidio::hal {
namespace {

// ---------- link-mode vocabulary ----------

TEST(HalLinkMode, BitrateValuesAndNames) {
  EXPECT_DOUBLE_EQ(bitrate_bps(Bitrate::k10), 1e4);
  EXPECT_DOUBLE_EQ(bitrate_bps(Bitrate::k100), 1e5);
  EXPECT_DOUBLE_EQ(bitrate_bps(Bitrate::M1), 1e6);
  EXPECT_EQ(to_string(Bitrate::k10), "10k");
  EXPECT_EQ(to_string(Bitrate::M1), "1M");
  EXPECT_STREQ(to_string(LinkMode::Backscatter), "backscatter");
}

// ---------- capability lattice ----------

Capabilities tiny_caps() {
  Capabilities caps;
  caps.can_active = true;
  caps.lattice = {{LinkMode::Active, Bitrate::M1, 0.1, 0.09}};
  return caps;
}

TEST(HalCapabilities, SupportsAndFind) {
  const Capabilities caps = tiny_caps();
  EXPECT_TRUE(caps.supports(LinkMode::Active));
  EXPECT_FALSE(caps.supports(LinkMode::Backscatter));
  const OperatingPoint* point = caps.find(LinkMode::Active, Bitrate::M1);
  ASSERT_NE(point, nullptr);
  EXPECT_DOUBLE_EQ(point->tx_power_w, 0.1);
  EXPECT_EQ(caps.find(LinkMode::Active, Bitrate::k10), nullptr);
  EXPECT_EQ(caps.find(LinkMode::PassiveRx, Bitrate::M1), nullptr);
}

TEST(HalOperatingPoint, PerBitEnergiesFollowTheLattice) {
  const OperatingPoint point{LinkMode::Active, Bitrate::M1, 0.1, 0.05};
  EXPECT_DOUBLE_EQ(point.tx_joules_per_bit(), 0.1 / 1e6);
  EXPECT_DOUBLE_EQ(point.rx_joules_per_bit(), 0.05 / 1e6);
  EXPECT_DOUBLE_EQ(point.efficiency_ratio(), 0.5);
}

// ---------- StandardRadio request/confirm state machine ----------

TEST(HalStandardRadio, RequestConfirmHandshake) {
  StandardRadio radio("dev", 1, util::WattHours(1.0), tiny_caps());
  EXPECT_EQ(radio.state(), RadioState::Sleep);
  EXPECT_STREQ(to_string(radio.state()), "sleep");

  const OperatingPoint point = radio.caps().lattice.front();
  ASSERT_TRUE(radio.switch_to(point, Role::DataTransmitter));
  EXPECT_EQ(radio.state(), RadioState::TransmitReady);
  EXPECT_TRUE(radio.transmit(util::Seconds(1e-3)));

  ASSERT_TRUE(radio.switch_to(point, Role::DataReceiver));
  EXPECT_EQ(radio.state(), RadioState::ListenReady);
  EXPECT_TRUE(radio.listen(util::Seconds(1e-3)));

  radio.go_idle();
  EXPECT_EQ(radio.state(), RadioState::Sleep);
}

TEST(HalStandardRadio, IllegalOpsThrow) {
  StandardRadio radio("dev", 1, util::WattHours(1.0), tiny_caps());
  // Sleep: neither data op is legal, and this hardware has no CCA.
  EXPECT_THROW(radio.transmit(util::Seconds(1e-3)), std::logic_error);
  EXPECT_THROW(radio.listen(util::Seconds(1e-3)), std::logic_error);
  EXPECT_THROW(radio.cca_clear(util::Dbm(-90.0)), std::logic_error);

  const OperatingPoint point = radio.caps().lattice.front();
  ASSERT_TRUE(radio.switch_to(point, Role::DataTransmitter));
  EXPECT_THROW(radio.listen(util::Seconds(1e-3)), std::logic_error);
}

TEST(HalStandardRadio, DrainMatchesLedger) {
  StandardRadio radio("dev", 1, util::WattHours(1.0), tiny_caps());
  const double start = radio.battery().remaining_joules();
  const OperatingPoint point = radio.caps().lattice.front();
  ASSERT_TRUE(radio.switch_to(point, Role::DataTransmitter));
  ASSERT_TRUE(radio.advance(util::Seconds(2.0)));
  radio.go_idle();
  const double drained = start - radio.battery().remaining_joules();
  EXPECT_NEAR(drained, radio.ledger().total_joules(), 1e-12 * start);
  EXPECT_GT(drained, 0.0);
}

// ---------- registry + shipped backends ----------

TEST(HalBackendRegistry, RegisterAllIsIdempotentAndSorted) {
  backends::register_all();
  backends::register_all();  // second call must be a no-op, not a throw
  auto& registry = BackendRegistry::instance();
  const auto names = registry.names();
  ASSERT_GE(names.size(), 4u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const char* name :
       {backends::kBraidio, backends::kBleActive, backends::kReaderPassive,
        backends::kBlispHybrid}) {
    EXPECT_TRUE(registry.contains(name)) << name;
    EXPECT_EQ(registry.get(name).name(), name);
  }
  EXPECT_FALSE(registry.contains("no-such-radio"));
  EXPECT_THROW(registry.get("no-such-radio"), std::out_of_range);
}

TEST(HalBackends, DeclaredCapabilitiesMatchTheHardwareStory) {
  backends::register_all();
  const Capabilities& braidio = backends::braidio_backend().caps();
  EXPECT_TRUE(braidio.can_active);
  EXPECT_TRUE(braidio.can_source_carrier);
  EXPECT_TRUE(braidio.can_backscatter);
  EXPECT_EQ(braidio.lattice.size(), 9u);  // 3 modes x 3 bitrates

  const Capabilities& ble = backends::ble_active_backend().caps();
  EXPECT_TRUE(ble.can_active);
  EXPECT_FALSE(ble.can_backscatter);
  EXPECT_FALSE(ble.can_source_carrier);

  const Capabilities& reader = backends::reader_passive_backend().caps();
  EXPECT_FALSE(reader.can_active);
  EXPECT_TRUE(reader.can_source_carrier);
  EXPECT_TRUE(reader.can_backscatter);

  const Capabilities& blisp = backends::blisp_hybrid_backend().caps();
  EXPECT_TRUE(blisp.can_active);
  EXPECT_TRUE(blisp.can_backscatter);
}

TEST(HalBackends, EveryShippedBackendConforms) {
  backends::register_all();
  for (const auto& name : BackendRegistry::instance().names()) {
    const auto violations =
        conformance_violations(BackendRegistry::instance().get(name));
    EXPECT_TRUE(violations.empty())
        << name << ": " << violations.size() << " violation(s), first: "
        << violations.front();
  }
}

TEST(HalBackends, CreateRadioHonorsBatteryAndCaps) {
  backends::register_all();
  const auto& backend = backends::ble_active_backend();
  const auto radio = backend.create_radio("node", 7, util::WattHours(0.5));
  EXPECT_EQ(radio->name(), "node");
  EXPECT_EQ(radio->address(), 7);
  EXPECT_NEAR(radio->battery().remaining_joules(), 0.5 * 3600.0, 1e-9);
  EXPECT_FALSE(radio->caps().can_backscatter);
}

}  // namespace
}  // namespace braidio::hal
