#include "phy/qam_backscatter.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "phy/ber.hpp"
#include "util/units.hpp"

namespace braidio::phy {
namespace {

TEST(Qam, Degenerates_ToBpskAtM2) {
  for (double db : {0.0, 4.0, 8.0}) {
    const double g = util::db_to_linear(db);
    EXPECT_DOUBLE_EQ(qam_bit_error_rate(2, g),
                     bit_error_rate(BerModel::CoherentBpsk, g));
  }
}

TEST(Qam, QpskMatchesBpskPerBit) {
  // Gray-coded QPSK has the same per-bit error rate as BPSK (the two
  // quadratures are independent BPSK channels).
  for (double db : {2.0, 6.0, 9.0}) {
    const double g = util::db_to_linear(db);
    EXPECT_NEAR(qam_bit_error_rate(4, g) /
                    bit_error_rate(BerModel::CoherentBpsk, g),
                1.0, 0.05)
        << db;
  }
}

TEST(Qam, HigherOrderNeedsMoreSnr) {
  const double t = 0.01;
  const double s2 = qam_required_snr(2, t);
  const double s16 = qam_required_snr(16, t);
  const double s64 = qam_required_snr(64, t);
  EXPECT_GT(s16, s2 * 2.0);
  EXPECT_GT(s64, s16 * 2.0);
  // Textbook figure: 16-QAM needs ~4 dB more Eb/N0 than QPSK at 1e-2.
  EXPECT_NEAR(util::linear_to_db(s16 / qam_required_snr(4, t)), 4.0, 1.0);
}

TEST(Qam, BerMonotoneInSnrAndBounded) {
  for (unsigned m : {2u, 4u, 16u, 64u}) {
    double prev = 0.51;
    for (double db = -5.0; db <= 25.0; db += 1.0) {
      const double p = qam_bit_error_rate(m, util::db_to_linear(db));
      EXPECT_LE(p, prev + 1e-12);
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 0.5);
      prev = p;
    }
  }
}

TEST(Qam, TagEnergyPerBitFallsWithOrder) {
  QamTagModel tag;
  const double rs = 1e6;  // 1 Msym/s
  const double e2 = tag.tag_joules_per_bit(2, util::Hertz(rs));
  const double e16 = tag.tag_joules_per_bit(16, util::Hertz(rs));
  const double e64 = tag.tag_joules_per_bit(64, util::Hertz(rs));
  EXPECT_NEAR(e2 / e16, 4.0, 1e-9);   // log2(16)/log2(2)
  EXPECT_NEAR(e2 / e64, 6.0, 1e-9);
  // [48]-class figure of merit: ~pJ/bit scale at Msym/s rates.
  EXPECT_LT(e16, 10e-12 + tag.static_power_w / (4.0 * rs));
}

TEST(Qam, RangeShrinksGently) {
  // The d^-4 radar path compresses the SNR penalty: 16-QAM (with its
  // 4x-per-symbol SNR appetite) loses range by only ~(snr ratio)^(1/4).
  const double r16 = qam_range_m(16, 0.9);
  const double r64 = qam_range_m(64, 0.9);
  EXPECT_DOUBLE_EQ(qam_range_m(2, 0.9), 0.9);
  EXPECT_LT(r16, 0.9);
  EXPECT_GT(r16, 0.5);
  EXPECT_LT(r64, r16);
}

TEST(Qam, ThroughputScalesWithOrder) {
  QamTagModel tag;
  EXPECT_DOUBLE_EQ(tag.bitrate_bps(16, util::Hertz(1e6)), 4e6);
  EXPECT_DOUBLE_EQ(tag.bitrate_bps(64, util::Hertz(1e6)), 6e6);
}

TEST(Qam, Validation) {
  EXPECT_THROW(qam_bit_error_rate(8, 1.0), std::invalid_argument);
  EXPECT_THROW(qam_bit_error_rate(16, -1.0), std::domain_error);
  EXPECT_THROW(qam_required_snr(16, 0.0), std::domain_error);
  QamTagModel tag;
  EXPECT_THROW(tag.bitrate_bps(16, util::Hertz(0.0)), std::domain_error);
  EXPECT_THROW(qam_range_m(16, 0.0), std::domain_error);
}

}  // namespace
}  // namespace braidio::phy
