// MAC policy layer: the pluggable channel-access interface, the
// scheduled-slot (TDMA) hub policy, the charged-CCA accounting, and the
// dead-destination rules (DESIGN.md §16).
#include "net/mac_policy.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "backends/backends.hpp"
#include "energy/ledger.hpp"
#include "net/network_sim.hpp"
#include "net/tdma.hpp"
#include "sim/faults/fault_timeline.hpp"
#include "sim/scenario.hpp"
#include "sim/sweep_runner.hpp"

namespace braidio::net {
namespace {

const hal::RadioBackend& backend(const char* name) {
  backends::register_all();
  return hal::BackendRegistry::instance().get(name);
}

/// A tag's non-idle spend: everything but the sleep floor, i.e. what the
/// MAC actually made the radio do.
double active_joules(const hal::IRadio& radio) {
  return radio.ledger().total_joules() -
         radio.ledger().joules(energy::EnergyCategory::Idle);
}

TEST(MacPolicy, ParseRoundTrips) {
  EXPECT_EQ(parse_mac("csma"), MacKind::Csma);
  EXPECT_EQ(parse_mac("tdma"), MacKind::Tdma);
  EXPECT_THROW(parse_mac("aloha"), std::invalid_argument);
  EXPECT_STREQ(to_string(MacKind::Csma), "csma");
  EXPECT_STREQ(to_string(MacKind::Tdma), "tdma");
}

TEST(MacPolicy, RejectsBadTdmaConfig) {
  TdmaConfig bad_guard;
  bad_guard.guard_s = 0.0;
  EXPECT_THROW(ScheduledSlotMac(bad_guard, 4), std::invalid_argument);
  TdmaConfig bad_retry;
  bad_retry.reg_retry_s = -1.0;
  EXPECT_THROW(ScheduledSlotMac(bad_retry, 4), std::invalid_argument);
  TdmaConfig no_budget;
  no_budget.max_registration_attempts = 0;
  EXPECT_THROW(ScheduledSlotMac(no_budget, 4), std::invalid_argument);
}

TEST(ScheduledSlotMac, DeliversOnAQuietStar) {
  NetConfig config;
  config.backend = &backend(backends::kBraidio);
  config.mac = MacKind::Tdma;
  config.topology.nodes = 4;
  config.topology.extent_m = 0.4;
  config.packets_per_node = 2;
  NetworkSimulator sim(config);
  const NetStats stats = sim.run();
  EXPECT_EQ(stats.generated, 8u);
  EXPECT_EQ(stats.delivered, 8u);
  EXPECT_EQ(stats.csma_failures, 0u);  // slots are granted, never contended
  EXPECT_EQ(stats.mac.registrations, 4u);
  EXPECT_GT(stats.mac.rounds, 0u);
  EXPECT_EQ(stats.mac.slots_reclaimed, 0u);
  const auto& policy = dynamic_cast<const ScheduledSlotMac&>(sim.mac_policy());
  for (std::uint32_t i = 1; i <= 4; ++i) {
    EXPECT_TRUE(policy.is_registered(i));
  }
}

TEST(ScheduledSlotMac, SweepsAreByteIdenticalSerialVsParallel) {
  const auto run_with_threads = [&](unsigned threads) {
    sim::Scenario scenario(
        "tdma_determinism", {sim::Axis::indexed("replica", 6)},
        {"events", "delivered", "rounds", "joules"},
        [&](sim::SweepPoint& p) {
          NetConfig config;
          config.backend = &backend(backends::kBraidio);
          config.mac = MacKind::Tdma;
          config.topology.kind = TopologyKind::RandomGeometric;
          config.topology.nodes = 48;
          config.topology.extent_m = 1.5;
          config.topology.link_range_m = 0.8;
          config.packets_per_node = 2;
          config.seed = p.seed();
          NetworkSimulator sim(config);
          const NetStats stats = sim.run();
          std::ostringstream joules;
          joules.precision(17);
          joules << stats.total_joules;
          sim::RunRecord record;
          record.cells = {std::to_string(stats.events),
                          std::to_string(stats.delivered),
                          std::to_string(stats.mac.rounds), joules.str()};
          return record;
        });
    sim::SweepOptions options;
    options.threads = threads;
    return sim::SweepRunner(options).run(scenario).to_csv();
  };
  const std::string serial = run_with_threads(1);
  const std::string parallel = run_with_threads(4);
  EXPECT_EQ(serial, parallel);
}

TEST(ScheduledSlotMac, ReclaimsSlotsWhenNodesDie) {
  // Tags on a starvation battery: they register, transmit a while, then
  // die mid-backlog. The planner must drop dead members (reclaiming
  // their slots), keep serving the rest, and terminate. The ble-active
  // backend makes each transmission cost real milliwatt-scale energy, so
  // the deaths land mid-run, inside assigned slots.
  NetConfig config;
  config.backend = &backend(backends::kBleActive);
  config.mac = MacKind::Tdma;
  config.topology.nodes = 8;
  config.topology.extent_m = 0.4;
  config.packets_per_node = 50;
  config.tag_battery_wh = 3e-7;  // survives registration, not the backlog
  NetworkSimulator sim(config);
  const NetStats stats = sim.run();
  EXPECT_GT(stats.battery_deaths, 0u);
  EXPECT_GT(stats.mac.slots_reclaimed, 0u);
  EXPECT_LT(stats.delivered, stats.generated);
  // Conservation stays exact through the deaths: each ledger covers
  // exactly what its battery gave up.
  for (std::uint32_t i = 0; i < sim.node_count(); ++i) {
    const hal::IRadio& radio = sim.node(i).radio();
    const double drained = radio.battery().capacity_joules() -
                           radio.battery().remaining_joules();
    EXPECT_NEAR(radio.ledger().total_joules(), drained,
                1e-9 * radio.battery().capacity_joules() + 1e-15);
  }
}

TEST(ScheduledSlotMac, RegistrationRidesOutTargetedDropout) {
  // Tag 1 is under a targeted carrier dropout for the first 0.3 s: its
  // registration exchanges fail and back off (reg_retry_s), then succeed
  // once the fault lifts — after which it delivers everything.
  std::istringstream script("dropout 0 0.3 @1\n");
  std::string error;
  const auto timeline = sim::faults::FaultTimeline::parse(script, &error);
  ASSERT_TRUE(timeline.has_value()) << error;
  const sim::faults::ImpairmentSchedule schedule(*timeline);

  NetConfig config;
  config.backend = &backend(backends::kBraidio);
  config.mac = MacKind::Tdma;
  config.topology.nodes = 2;
  config.topology.extent_m = 0.3;
  config.packets_per_node = 2;
  config.kick_spread_s = 0.01;  // both tags ask well inside the dropout
  config.impairments = &schedule;
  NetworkSimulator sim(config);
  const NetStats stats = sim.run();
  EXPECT_EQ(stats.mac.registrations, 2u);
  EXPECT_EQ(sim.node(1).stats().delivered, 2u);
  EXPECT_EQ(sim.node(2).stats().delivered, 2u);
  EXPECT_GT(stats.elapsed_s, 0.3);  // the run really waited the fault out
}

TEST(ScheduledSlotMac, PermanentDropoutIsBoundedAndIsolated) {
  // A dropout that never lifts: tag 1 burns its registration budget and
  // is given up on — the run terminates and tag 2 is untouched.
  std::istringstream script("dropout 0 1e6 @1\n");
  std::string error;
  const auto timeline = sim::faults::FaultTimeline::parse(script, &error);
  ASSERT_TRUE(timeline.has_value()) << error;
  const sim::faults::ImpairmentSchedule schedule(*timeline);

  NetConfig config;
  config.backend = &backend(backends::kBraidio);
  config.mac = MacKind::Tdma;
  config.topology.nodes = 2;
  config.topology.extent_m = 0.3;
  config.packets_per_node = 2;
  config.kick_spread_s = 0.01;
  config.impairments = &schedule;
  NetworkSimulator sim(config);
  const NetStats stats = sim.run();
  EXPECT_EQ(stats.mac.registrations, 1u);
  EXPECT_EQ(sim.node(1).stats().delivered, 0u);
  EXPECT_EQ(sim.node(2).stats().delivered, 2u);
  const auto& policy = dynamic_cast<const ScheduledSlotMac&>(sim.mac_policy());
  EXPECT_FALSE(policy.is_registered(1));
  EXPECT_TRUE(policy.is_registered(2));
}

TEST(ScheduledSlotMac, CcaDeafReaderPassiveDeliversDenseStar) {
  // The collapse scenario, fixed: pure-backscatter tags cannot carrier
  // sense, so a dense uncoordinated population collides itself to death
  // — but under hub-assigned slots the same hardware delivers >90%.
  NetConfig tdma;
  tdma.backend = &backend(backends::kReaderPassive);
  tdma.mac = MacKind::Tdma;
  tdma.topology.nodes = 1000;
  tdma.topology.extent_m = 2.0;
  tdma.packets_per_node = 2;
  NetworkSimulator tdma_sim(tdma);
  const NetStats scheduled = tdma_sim.run();
  ASSERT_GT(scheduled.generated, 0u);
  const double tdma_pct = 100.0 * static_cast<double>(scheduled.delivered) /
                          static_cast<double>(scheduled.generated);
  EXPECT_GT(tdma_pct, 90.0);

  NetConfig csma = tdma;
  csma.mac = MacKind::Csma;
  NetworkSimulator csma_sim(csma);
  const NetStats contended = csma_sim.run();
  const double csma_pct = 100.0 * static_cast<double>(contended.delivered) /
                          static_cast<double>(contended.generated);
  EXPECT_LT(csma_pct, tdma_pct);  // the collapse the slots fix
}

TEST(MacPolicy, CsmaListeningCostsMoreThanTdmaCoordination) {
  // Satellite pin for the charged-CCA bugfix: for equal delivered bytes
  // on a quiet star, a CSMA tag's non-idle ledger strictly exceeds a
  // TDMA tag's — the CSMA tag pays a listen window per attempt, the TDMA
  // tag pays only one cheap registration exchange.
  const auto run = [&](MacKind mac) {
    NetConfig config;
    config.backend = &backend(backends::kBraidio);
    config.mac = mac;
    config.topology.nodes = 4;
    config.topology.extent_m = 0.2;
    config.packets_per_node = 2;
    NetworkSimulator sim(config);
    const NetStats stats = sim.run();
    EXPECT_EQ(stats.delivered, stats.generated);
    double tags = 0.0;
    for (std::uint32_t i = 1; i < sim.node_count(); ++i) {
      tags += active_joules(sim.node(i).radio());
    }
    return tags;
  };
  const double csma_joules = run(MacKind::Csma);
  const double tdma_joules = run(MacKind::Tdma);
  EXPECT_GT(csma_joules, tdma_joules);
}

TEST(NetworkSimulator, DeadDestinationAccruesNoCharge) {
  // The hub dies early on a starvation battery. Tags must keep paying
  // for their own (futile) transmissions while the dead hub's ledger
  // stays pinned at exactly its capacity — no post-death spend hiding in
  // the drained battery's clamp — and the run still terminates.
  NetConfig config;
  config.backend = &backend(backends::kBraidio);
  config.topology.nodes = 8;
  config.topology.extent_m = 0.4;
  config.packets_per_node = 4;
  config.hub_battery_wh = 1e-7;  // dies inside the first receive windows
  NetworkSimulator sim(config);
  const NetStats stats = sim.run();
  EXPECT_GT(stats.battery_deaths, 0u);
  EXPECT_FALSE(sim.node(0).alive());
  EXPECT_LT(stats.delivered, stats.generated);
  EXPECT_GT(stats.tx_attempts, stats.delivered);  // tags kept trying

  const hal::IRadio& hub = sim.node(0).radio();
  EXPECT_EQ(hub.battery().remaining_joules(), 0.0);
  // Ledger == capacity exactly: everything the battery held was posted,
  // and nothing was posted after death.
  EXPECT_NEAR(hub.ledger().total_joules(), hub.battery().capacity_joules(),
              1e-12 * hub.battery().capacity_joules());
  // The tags' own ledgers still conserve exactly.
  for (std::uint32_t i = 1; i < sim.node_count(); ++i) {
    const hal::IRadio& radio = sim.node(i).radio();
    const double drained = radio.battery().capacity_joules() -
                           radio.battery().remaining_joules();
    EXPECT_NEAR(radio.ledger().total_joules(), drained,
                1e-9 * radio.battery().capacity_joules());
  }
}

}  // namespace
}  // namespace braidio::net
