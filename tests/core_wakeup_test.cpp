#include "core/wakeup.hpp"
#include "util/units.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace braidio::core {
namespace {

TEST(DutyCycleListener, PowerScalesWithDuty) {
  DutyCycleListener l;
  EXPECT_NEAR(l.average_power_w(1.0), l.rx_power_w + l.wake_overhead_j /
                                                          l.on_time_s,
              1e-9);
  EXPECT_LT(l.average_power_w(0.01), l.average_power_w(0.1));
  EXPECT_THROW(l.average_power_w(0.0), std::domain_error);
  EXPECT_THROW(l.average_power_w(1.5), std::domain_error);
}

TEST(DutyCycleListener, LatencyDutyTradeoff) {
  DutyCycleListener l;
  // Always-on: zero expected latency.
  EXPECT_DOUBLE_EQ(l.expected_latency_s(1.0), 0.0);
  // 1% duty with 2 ms windows: ~99 ms mean wait.
  EXPECT_NEAR(l.expected_latency_s(0.01), 0.099, 1e-6);
  EXPECT_GT(l.expected_latency_s(0.001), l.expected_latency_s(0.01));
}

TEST(DutyCycleListener, DutyForLatencyInverts) {
  DutyCycleListener l;
  for (double latency : {1e-3, 0.05, 1.0, 30.0}) {
    const double duty = l.duty_for_latency(util::Seconds(latency));
    EXPECT_NEAR(l.expected_latency_s(duty), latency, latency * 1e-6 + 1e-12);
  }
  EXPECT_DOUBLE_EQ(l.duty_for_latency(util::Seconds(0.0)), 1.0);
  EXPECT_THROW(l.duty_for_latency(util::Seconds(-1.0)), std::domain_error);
}

TEST(PassiveWakeup, LatencyIsPatternAirtimePlusRetries) {
  PassiveWakeupListener p;
  // 32 bits at 10 kbps = 3.2 ms; 1% misses pad it slightly.
  EXPECT_NEAR(p.expected_latency_s(), 3.2e-3 / 0.99, 1e-9);
  PassiveWakeupListener flaky = p;
  flaky.miss_probability = 0.5;
  EXPECT_NEAR(flaky.expected_latency_s(), 2.0 * 3.2e-3, 1e-9);
  flaky.miss_probability = 1.0;
  EXPECT_THROW(flaky.expected_latency_s(), std::domain_error);
}

TEST(Wakeup, PassiveWinsByOrdersOfMagnitudeAtEqualLatency) {
  // The headline: to match the passive listener's ~3 ms wake latency, a
  // duty-cycled active receiver must stay mostly on (~90 mW); the
  // envelope chain idles at 23 uW. Three-plus orders of magnitude.
  DutyCycleListener active;
  PassiveWakeupListener passive;
  const double ratio = equal_latency_power_ratio(active, passive);
  EXPECT_GT(ratio, 500.0);
  EXPECT_LT(ratio, 5000.0);
}

TEST(Wakeup, CrossoverAtRelaxedLatencyBudgets) {
  // The tradeoff has a crossover: when seconds of wake latency are
  // acceptable, aggressive duty cycling dips below the passive chain's
  // 23 uW floor — but at millisecond budgets passive wins by orders of
  // magnitude. Locate the crossover and sanity-check both sides.
  DutyCycleListener active;
  PassiveWakeupListener passive;
  const double relaxed = active.average_power_w(
      active.duty_for_latency(util::Seconds(10.0)));
  EXPECT_LT(relaxed, passive.average_power_w());  // active wins eventually
  const double tight = active.average_power_w(
      active.duty_for_latency(util::Seconds(0.01)));
  EXPECT_GT(tight, 100.0 * passive.average_power_w());
  // The crossover latency sits in the hundreds-of-ms to seconds band.
  double lo = 1e-3, hi = 100.0;
  for (int i = 0; i < 60; ++i) {
    const double mid = std::sqrt(lo * hi);
    const double p = active.average_power_w(
        active.duty_for_latency(util::Seconds(mid)));
    (p > passive.average_power_w() ? lo : hi) = mid;
  }
  EXPECT_GT(lo, 0.2);
  EXPECT_LT(lo, 20.0);
}

}  // namespace
}  // namespace braidio::core
