// Observability subsystem tests: histogram edge cases, ring-buffer
// wraparound + drop accounting, Chrome trace JSON parse-back, the runtime
// sampling gate, and the serial-vs-parallel determinism of the merged
// sweep metrics.
#include <cctype>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "core/braided_link.hpp"
#include "core/braidio_radio.hpp"
#include "core/mobility_sim.hpp"
#include "energy/ledger.hpp"
#include "obs/event.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/span.hpp"
#include "obs/tracer.hpp"
#include "phy/link_budget.hpp"
#include "sim/bench_telemetry.hpp"
#include "util/units.hpp"
#include "sim/faults/fault_timeline.hpp"
#include "sim/faults/impairment.hpp"
#include "sim/result_table.hpp"
#include "sim/scenario.hpp"
#include "sim/sweep_runner.hpp"

namespace {

using namespace braidio;

// ---------------------------------------------------------------------
// A minimal recursive-descent JSON parser, enough to parse back what
// chrome_trace_json / to_json_with_meta emit. Throws on malformed input.
// ---------------------------------------------------------------------
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Object, Array };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::map<std::string, JsonValue> object;
  std::vector<JsonValue> array;

  const JsonValue& at(const std::string& key) const {
    const auto it = object.find(key);
    if (it == object.end()) throw std::runtime_error("no key: " + key);
    return it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) throw std::runtime_error("trailing junk");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\r' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) throw std::runtime_error("eof");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("expected ") + c);
    }
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (consume_literal("true")) {
      JsonValue v;
      v.kind = JsonValue::Kind::Bool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      JsonValue v;
      v.kind = JsonValue::Kind::Bool;
      return v;
    }
    if (consume_literal("null")) return JsonValue{};
    return number();
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      JsonValue key = string_value();
      skip_ws();
      expect(':');
      v.object[key.string] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    JsonValue v;
    v.kind = JsonValue::Kind::String;
    expect('"');
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return v;
      if (c == '\\') {
        const char esc = peek();
        ++pos_;
        switch (esc) {
          case '"': v.string += '"'; break;
          case '\\': v.string += '\\'; break;
          case '/': v.string += '/'; break;
          case 'n': v.string += '\n'; break;
          case 't': v.string += '\t'; break;
          case 'r': v.string += '\r'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              throw std::runtime_error("bad \\u");
            }
            const int code =
                std::stoi(text_.substr(pos_, 4), nullptr, 16);
            pos_ += 4;
            v.string += static_cast<char>(code);
            break;
          }
          default: throw std::runtime_error("bad escape");
        }
      } else {
        v.string += c;
      }
    }
  }

  JsonValue number() {
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' ||
            text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) throw std::runtime_error("bad number");
    v.number = std::stod(text_.substr(start, pos_ - start));
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

JsonValue parse_json(const std::string& text) {
  return JsonParser(text).parse();
}

// ---------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------
TEST(HistogramData, EmptyHistogramReportsZeros) {
  obs::HistogramData h({1.0, 10.0, 100.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.p50(), 0.0);
  EXPECT_EQ(h.p99(), 0.0);
}

TEST(HistogramData, SingleSampleQuantilesAreExact) {
  obs::HistogramData h({1.0, 10.0, 100.0});
  h.record(5.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 5.0);
  // With one observation every quantile must report that value, not a
  // bucket-interpolated bound.
  EXPECT_DOUBLE_EQ(h.p50(), 5.0);
  EXPECT_DOUBLE_EQ(h.p95(), 5.0);
  EXPECT_DOUBLE_EQ(h.p99(), 5.0);
}

TEST(HistogramData, OverflowBucketSaturatesToObservedMax) {
  obs::HistogramData h({1.0, 2.0});
  // All samples land beyond the last bound -> the implicit overflow
  // bucket; quantiles must clamp to the observed max, not infinity.
  h.record(50.0);
  h.record(75.0);
  h.record(100.0);
  EXPECT_EQ(h.bucket(h.bucket_count() - 1), 3u);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.p99(), 100.0);
  EXPECT_DOUBLE_EQ(h.p50(), 100.0);
}

TEST(HistogramData, NanObservationsAreIgnored) {
  obs::HistogramData h({1.0, 10.0});
  h.record(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.count(), 0u);
  h.record(2.0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(HistogramData, QuantileIsMonotonicAndBounded) {
  obs::HistogramData h(obs::bucket_bounds(obs::Histogram::DwellSeconds));
  for (int i = 1; i <= 1000; ++i) h.record(i * 1e-3);  // 1 ms .. 1 s
  double last = 0.0;
  for (double q : {0.05, 0.25, 0.5, 0.75, 0.95, 0.99}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, last) << q;
    EXPECT_GE(v, h.min());
    EXPECT_LE(v, h.max());
    last = v;
  }
  EXPECT_NEAR(h.p50(), 0.5, 0.2);
}

TEST(HistogramData, MergeAddsAndRejectsMismatchedBounds) {
  obs::HistogramData a({1.0, 10.0});
  obs::HistogramData b({1.0, 10.0});
  a.record(0.5);
  b.record(5.0);
  b.record(50.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.min(), 0.5);
  EXPECT_DOUBLE_EQ(a.max(), 50.0);

  obs::HistogramData other({2.0, 20.0});
  other.record(1.0);
  EXPECT_DEATH(a.merge(other), "REQUIRE");
}

// ---------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------
TEST(MetricsRegistry, BuiltinAndNamedMetricsRoundTrip) {
  obs::MetricsRegistry r;
  EXPECT_TRUE(r.empty());
  r.add(obs::Counter::PacketsTx, 3);
  r.observe(obs::Histogram::EnergyPostJoules, 1e-6);
  r.counter("custom_total") += 7;
  r.gauge("battery_frac") = 0.25;
  EXPECT_FALSE(r.empty());
  EXPECT_EQ(r.value(obs::Counter::PacketsTx), 3u);
  EXPECT_EQ(r.histogram(obs::Histogram::EnergyPostJoules).count(), 1u);
  EXPECT_EQ(r.counters().at("custom_total"), 7u);
  EXPECT_DOUBLE_EQ(r.gauges().at("battery_frac"), 0.25);
}

TEST(MetricsRegistry, MergeAddsCountersAndKeepsLastGauge) {
  obs::MetricsRegistry a, b;
  a.add(obs::Counter::ArqRetries, 2);
  b.add(obs::Counter::ArqRetries, 5);
  a.gauge("g") = 1.0;
  b.gauge("g") = 2.0;
  a.merge(b);
  EXPECT_EQ(a.value(obs::Counter::ArqRetries), 7u);
  EXPECT_DOUBLE_EQ(a.gauges().at("g"), 2.0);
}

TEST(MetricsRegistry, ToJsonParsesBackAndIsDeterministic) {
  obs::MetricsRegistry r;
  r.add(obs::Counter::ModeSwitches, 4);
  r.observe(obs::Histogram::DwellSeconds, 0.125);
  r.observe(obs::Histogram::DwellSeconds, 2.5);
  r.counter("zeta") += 1;
  r.counter("alpha") += 2;
  const std::string json = r.to_json();
  EXPECT_EQ(json, r.to_json());  // stable rendering
  const auto doc = parse_json(json);
  EXPECT_EQ(doc.at("counters").at("mode_switches").number, 4.0);
  EXPECT_EQ(doc.at("counters").at("alpha").number, 2.0);
  const auto& dwell = doc.at("histograms").at("dwell_seconds");
  EXPECT_EQ(dwell.at("count").number, 2.0);
  EXPECT_DOUBLE_EQ(dwell.at("sum").number, 2.625);
  // Named metrics render in sorted order.
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zeta\""));
}

// ---------------------------------------------------------------------
// Tracer ring buffers
// ---------------------------------------------------------------------
class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& tracer = obs::Tracer::instance();
    tracer.set_enabled(false);
    tracer.set_sample_every(1);
    tracer.set_lane_capacity(kCapacity);
    tracer.clear();
    tracer.set_enabled(true);
  }

  void TearDown() override {
    auto& tracer = obs::Tracer::instance();
    tracer.set_enabled(false);
    tracer.set_sample_every(1);
    tracer.set_lane_capacity(std::size_t{1} << 14);
    tracer.clear();
  }

  static constexpr std::size_t kCapacity = 8;
};

TEST_F(TracerTest, RingWrapsAndCountsDrops) {
  auto& tracer = obs::Tracer::instance();
  for (int i = 0; i < 20; ++i) {
    tracer.record(obs::EventType::PacketTx, "frame", obs::no_sim_time(),
                  static_cast<double>(i));
  }
  const auto snapshot = tracer.snapshot();
  EXPECT_EQ(snapshot.total_recorded(), 20u);
  EXPECT_EQ(snapshot.total_dropped(), 12u);
  EXPECT_EQ(snapshot.total_events(), kCapacity);
  // The survivors are the newest events, oldest-first, with contiguous
  // sequence numbers.
  const auto& lane = snapshot.lanes.front();
  ASSERT_EQ(lane.events.size(), kCapacity);
  for (std::size_t i = 0; i < lane.events.size(); ++i) {
    EXPECT_EQ(lane.events[i].seq, 12 + i);
    EXPECT_DOUBLE_EQ(lane.events[i].value,
                     12.0 + static_cast<double>(i));
  }
}

TEST_F(TracerTest, SamplingGateKeepsEveryNth) {
  auto& tracer = obs::Tracer::instance();
  tracer.set_sample_every(4);
  for (int i = 0; i < 16; ++i) {
    tracer.record(obs::EventType::ArqRetry, nullptr, obs::no_sim_time(),
                  static_cast<double>(i));
  }
  const auto snapshot = tracer.snapshot();
  ASSERT_EQ(snapshot.total_events(), 4u);
  EXPECT_DOUBLE_EQ(snapshot.lanes.front().events[0].value, 0.0);
  EXPECT_DOUBLE_EQ(snapshot.lanes.front().events[1].value, 4.0);
}

TEST_F(TracerTest, LabelsAreTruncatedAndSanitized) {
  auto& tracer = obs::Tracer::instance();
  tracer.record(obs::EventType::ModeSwitch,
                "a,very\"long\nlabel that keeps going and going", 1.0,
                0.0);
  const auto snapshot = tracer.snapshot();
  ASSERT_EQ(snapshot.total_events(), 1u);
  const std::string label = snapshot.lanes.front().events[0].label;
  EXPECT_LE(label.size(), obs::kEventLabelCapacity);
  EXPECT_EQ(label.find(','), std::string::npos);
  EXPECT_EQ(label.find('"'), std::string::npos);
  EXPECT_EQ(label.find('\n'), std::string::npos);
  EXPECT_EQ(label.substr(0, 7), "a;very;");
}

#if BRAIDIO_OBS_COMPILED
TEST_F(TracerTest, DisabledMacroRecordsNothingAndSkipsArguments) {
  obs::Tracer::instance().set_enabled(false);
  int evaluated = 0;
  const auto label = [&]() {
    ++evaluated;
    return "label";
  };
  BRAIDIO_TRACE_EVENT(obs::EventType::PacketTx, label(), 0.0, 0.0);
  EXPECT_EQ(obs::Tracer::instance().snapshot().total_events(), 0u);
  // The macro must not evaluate its arguments while disabled.
  EXPECT_EQ(evaluated, 0);
}
#endif  // BRAIDIO_OBS_COMPILED

TEST_F(TracerTest, ChromeJsonParsesBackWithTypedEvents) {
  auto& tracer = obs::Tracer::instance();
  tracer.record(obs::EventType::DwellStart, "passive@1M", 1.0, 0.0);
  tracer.record(obs::EventType::EnergyPost, "carrier", 1.25, 3.5e-6);
  tracer.record(obs::EventType::DwellEnd, "passive@1M", 2.0, 1.0);
  const std::string json = tracer.to_chrome_json();

  const auto doc = parse_json(json);
  EXPECT_EQ(doc.at("displayTimeUnit").string, "ms");
  const auto& events = doc.at("traceEvents").array;
  ASSERT_EQ(events.size(), 3u);

  EXPECT_EQ(events[0].at("ph").string, "B");
  EXPECT_EQ(events[0].at("name").string, "passive@1M");
  EXPECT_EQ(events[0].at("args").at("type").string, "DwellStart");

  EXPECT_EQ(events[1].at("ph").string, "i");
  EXPECT_EQ(events[1].at("name").string, "EnergyPost");
  EXPECT_NEAR(events[1].at("args").at("value").number, 3.5e-6, 1e-9);
  EXPECT_DOUBLE_EQ(events[1].at("args").at("sim_s").number, 1.25);

  EXPECT_EQ(events[2].at("ph").string, "E");
  // Timestamps are microseconds and non-decreasing within a lane.
  EXPECT_LE(events[0].at("ts").number, events[2].at("ts").number);

  EXPECT_EQ(doc.at("otherData").at("recorded").number, 3.0);
  EXPECT_EQ(doc.at("otherData").at("dropped").number, 0.0);
}

TEST_F(TracerTest, CsvHasHeaderAndOneLinePerEvent) {
  auto& tracer = obs::Tracer::instance();
  tracer.record(obs::EventType::PacketRx, "active@1M",
                obs::no_sim_time(), 37.0);
  const std::string csv = tracer.to_csv();
  EXPECT_EQ(csv.rfind("wall_s,lane,seq,type,label,sim_s,value\n", 0),
            0u);
  // NaN sim time renders as an empty field.
  EXPECT_NE(csv.find(",PacketRx,active@1M,,37"), std::string::npos);
}

// ---------------------------------------------------------------------
// Sweep integration: merged metrics must be byte-identical for any
// thread count, like the data itself.
// ---------------------------------------------------------------------
#if BRAIDIO_OBS_COMPILED

sim::Scenario counting_scenario(std::size_t points) {
  return sim::Scenario(
      "obs_counting", {sim::Axis::indexed("point", points)}, {"value"},
      [](sim::SweepPoint& p) {
        // Deterministic per-point posting pattern.
        obs::count(obs::Counter::PacketsTx, p.flat_index() + 1);
        obs::observe(obs::Histogram::EnergyPostJoules,
                     1e-6 * static_cast<double>(p.flat_index() + 1));
        sim::RunRecord record;
        record.cells = {std::to_string(p.flat_index())};
        record.numbers = {static_cast<double>(p.flat_index())};
        return record;
      });
}

TEST(SweepMetrics, MergedRegistryIsIdenticalSerialVsParallel) {
  const std::size_t points = 64;
  const auto scenario = counting_scenario(points);

  sim::SweepOptions serial;
  serial.threads = 1;
  const auto reference = sim::SweepRunner(serial).run(scenario);

  const std::string expected = reference.metrics_registry().to_json();
  EXPECT_EQ(
      reference.metrics_registry().value(obs::Counter::SweepPoints),
      points);
  EXPECT_EQ(reference.metrics_registry().value(obs::Counter::PacketsTx),
            points * (points + 1) / 2);

  for (unsigned threads : {2u, 4u, 8u}) {
    sim::SweepOptions options;
    options.threads = threads;
    const auto parallel = sim::SweepRunner(options).run(scenario);
    EXPECT_EQ(parallel.metrics_registry().to_json(), expected)
        << threads;
    EXPECT_EQ(parallel.to_json(), reference.to_json()) << threads;
  }
}

TEST(SweepMetrics, ScopedRegistryCapturesAndGlobalCatchesTheRest) {
  obs::reset_global_metrics();
  obs::MetricsRegistry local;
  {
    obs::ScopedMetrics scoped(&local);
    obs::count(obs::Counter::ArqRetries, 3);
  }
  obs::count(obs::Counter::ArqDrops, 2);  // outside any scope -> global
  EXPECT_EQ(local.value(obs::Counter::ArqRetries), 3u);
  EXPECT_EQ(local.value(obs::Counter::ArqDrops), 0u);
  const auto global = obs::global_metrics_snapshot();
  EXPECT_EQ(global.value(obs::Counter::ArqDrops), 2u);
  EXPECT_EQ(global.value(obs::Counter::ArqRetries), 0u);
  obs::reset_global_metrics();
}

TEST(SweepMetrics, MetricsGateStopsPosting) {
  obs::reset_global_metrics();
  obs::set_metrics_enabled(false);
  obs::count(obs::Counter::PacketsTx, 5);
  obs::set_metrics_enabled(true);
  EXPECT_EQ(
      obs::global_metrics_snapshot().value(obs::Counter::PacketsTx),
      0u);
  obs::reset_global_metrics();
}

#endif  // BRAIDIO_OBS_COMPILED

// ---------------------------------------------------------------------
// Energy-provenance profile (obs/span.hpp): the attributed value type,
// the span/gate plumbing, the conservation invariant against the
// EnergyLedger, and serial-vs-parallel merge determinism.
// ---------------------------------------------------------------------
TEST(EnergyProfile, PostsAccumulateAndFeedTheSeries) {
  obs::EnergyProfile p;
  p.set_bucket_seconds(0.5);
  p.post("braid/device1/active-tx", 1.0, 0.1);
  p.post("braid/device1/active-tx", 2.0, 0.6);  // second bucket
  p.post("braid/device2/carrier", 4.0, obs::no_sim_time());  // no series
  EXPECT_DOUBLE_EQ(p.total_joules(), 7.0);
  EXPECT_EQ(p.total_posts(), 3u);
  ASSERT_EQ(p.entries().count("braid/device1/active-tx"), 1u);
  EXPECT_DOUBLE_EQ(p.entries().at("braid/device1/active-tx").joules, 3.0);
  EXPECT_EQ(p.entries().at("braid/device1/active-tx").posts, 2u);
  // The series key is the first two path segments; NaN sim time counts
  // toward the totals but never the series.
  const auto& series = p.series().at("braid/device1");
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0], 1.0);
  EXPECT_DOUBLE_EQ(series[1], 2.0);
  EXPECT_EQ(p.series().count("braid/device2"), 0u);
  EXPECT_EQ(p.series_skipped(), 0u);
}

TEST(EnergyProfile, MergeAddsSlotWiseAndSeriesElementWise) {
  obs::EnergyProfile a, b;
  a.post("x/y/c1", 1.0, 0.0);
  b.post("x/y/c1", 2.0, 0.0);
  b.post("x/y/c2", 4.0, 2.5);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.total_joules(), 7.0);
  EXPECT_DOUBLE_EQ(a.entries().at("x/y/c1").joules, 3.0);
  const auto& series = a.series().at("x/y");
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series[0], 3.0);
  EXPECT_DOUBLE_EQ(series[2], 4.0);
}

TEST(EnergyProfile, JsonAndCollapsedStackParseBackAndConserve) {
  obs::EnergyProfile p;
  p.post("braid/data/device1/active@1M:tx/active-tx", 1.25e-3, 0.0);
  p.post("braid/data/device2/passive@1M:rx/passive-rx", 2.5e-4, 0.25);
  p.post("hub/node3/carrier", 3.125e-2, 1.5);

  const std::string json = p.to_json();
  EXPECT_EQ(json, p.to_json());  // stable rendering
  const auto doc = parse_json(json);
  EXPECT_EQ(doc.at("schema").string, "braidio-energy-profile/v1");
  EXPECT_NEAR(doc.at("total_joules").number, p.total_joules(), 1e-15);
  EXPECT_EQ(doc.at("attributions").array.size(), 3u);
  EXPECT_EQ(doc.at("total_posts").number, 3.0);

  // Collapsed stack: "seg;seg <nanojoules>" per path; the integer nJ
  // values must conserve the profile total to per-line rounding.
  const std::string folded = p.to_collapsed_stack();
  std::int64_t total_nj = 0;
  std::size_t lines = 0;
  std::size_t pos = 0;
  while (pos < folded.size()) {
    const std::size_t eol = folded.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);
    const std::size_t space = folded.rfind(' ', eol);
    ASSERT_NE(space, std::string::npos);
    EXPECT_EQ(folded.find('/', pos), std::string::npos)
        << "paths must be ';'-separated";
    total_nj += std::stoll(folded.substr(space + 1, eol - space - 1));
    ++lines;
    pos = eol + 1;
  }
  EXPECT_EQ(lines, 3u);
  EXPECT_NEAR(static_cast<double>(total_nj) * 1e-9, p.total_joules(),
              1e-9 * static_cast<double>(lines));
}

TEST(EnergyProfileDeathTest, RejectsBadPostsAndMismatchedMerge) {
#if BRAIDIO_CONTRACTS_ENABLED
  obs::EnergyProfile p;
  EXPECT_DEATH(p.post("", 1.0, 0.0), "REQUIRE");
  EXPECT_DEATH(p.post("a/b", -1.0, 0.0), "REQUIRE");
  obs::EnergyProfile narrow, wide;
  narrow.set_bucket_seconds(0.5);
  narrow.post("a/b/c", 1.0, 0.0);
  wide.post("a/b/c", 1.0, 0.0);
  EXPECT_DEATH(narrow.merge(wide), "REQUIRE");
#else
  GTEST_SKIP() << "contracts disabled";
#endif
}

#if BRAIDIO_OBS_COMPILED

TEST(EnergySpan, DisabledMacroSkipsLabelAndGateStopsPosting) {
  obs::set_attribution_enabled(false);
  obs::reset_global_energy_profile();
  int evaluated = 0;
  const auto label = [&]() {
    ++evaluated;
    return "never";
  };
  {
    BRAIDIO_ENERGY_SPAN(span, label());
    obs::post_energy("active-tx", 1.0, 0.0);
  }
  // The macro must not evaluate its label while attribution is off, and
  // the gated hook must not post.
  EXPECT_EQ(evaluated, 0);
  EXPECT_TRUE(obs::global_energy_profile_snapshot().empty());
}

TEST(EnergySpan, LedgerChargesAreTaggedWithTheSanitizedSpanPath) {
  obs::reset_global_energy_profile();
  obs::set_attribution_enabled(true);
  {
    BRAIDIO_ENERGY_SPAN(exchange, "unit test");  // ' ' -> '_'
    BRAIDIO_ENERGY_SPAN(device, "device1");
    energy::EnergyLedger ledger;
    ledger.charge(energy::EnergyCategory::ActiveTx, util::Joules(2.0),
                  util::Seconds(1.0));
  }
  obs::set_attribution_enabled(false);
  const auto profile = obs::global_energy_profile_snapshot();
  obs::reset_global_energy_profile();
  ASSERT_EQ(profile.entries().count("unit_test/device1/active-tx"), 1u)
      << profile.to_json();
  EXPECT_DOUBLE_EQ(
      profile.entries().at("unit_test/device1/active-tx").joules, 2.0);
  EXPECT_DOUBLE_EQ(profile.total_joules(), 2.0);
}

// The conservation invariant the issue pins: the attributed span tree
// must sum to the ledger total for a mobility walk...
TEST(EnergyAttribution, MobilityWalkConservesLedgerTotal) {
  obs::set_attribution_enabled(true);
  core::PowerTable table;
  phy::LinkBudget budget;
  core::MobilitySimulator sim(table, budget);
  const auto trace =
      core::MobilityTrace::random_walk(0.3, 3.0, 1.4, util::Seconds(120.0),
                                       7);
  core::MobilitySimConfig cfg;
  obs::EnergyProfile profile;
  core::MobilityOutcome outcome;
  {
    obs::ScopedEnergyProfile scoped(&profile);
    outcome = sim.run(trace, cfg);
  }
  obs::set_attribution_enabled(false);
  ASSERT_FALSE(profile.empty());
  const double ledger_total = outcome.ledger.total_joules();
  ASSERT_GT(ledger_total, 0.0);
  // Same charges, grouped by path vs by category: only float summation
  // order differs.
  EXPECT_NEAR(profile.total_joules(), ledger_total, 1e-9 * ledger_total);
  // And the outcome ledger itself accounts for every drained joule.
  EXPECT_NEAR(ledger_total,
              outcome.device1_joules + outcome.device2_joules,
              1e-9 * ledger_total);
}

// ...and for a braid run under an injected fault schedule (retransmission
// and fallback paths post through the same spans).
TEST(EnergyAttribution, FaultedBraidConservesDeviceLedgers) {
  obs::set_attribution_enabled(true);
  core::PowerTable table;
  phy::LinkBudget budget;
  core::RegimeMap regimes(table, budget);
  core::BraidioRadio device1("device1", 1, util::WattHours(0.01), table);
  core::BraidioRadio device2("device2", 2, util::WattHours(0.01), table);
  const auto timeline = sim::faults::FaultTimeline::periodic_bursts(
      sim::faults::FaultKind::FadeBurst, /*count=*/3,
      /*first_start_s=*/0.02, /*period_s=*/0.2, /*duration_s=*/0.05,
      /*magnitude=*/14.0);
  const sim::faults::ImpairmentSchedule schedule(timeline);
  core::BraidedLinkConfig cfg;
  cfg.distance_m = 0.5;
  cfg.impairments = &schedule;
  core::BraidedLink link(device1, device2, regimes, cfg);
  obs::EnergyProfile profile;
  core::BraidedLinkStats stats;
  {
    obs::ScopedEnergyProfile scoped(&profile);
    stats = link.run(512);
  }
  obs::set_attribution_enabled(false);
  ASSERT_GT(stats.fault_activations, 0u);
  ASSERT_FALSE(profile.empty());
  const double ledger_total =
      device1.ledger().total_joules() + device2.ledger().total_joules();
  ASSERT_GT(ledger_total, 0.0);
  EXPECT_NEAR(profile.total_joules(), ledger_total, 1e-9 * ledger_total);
  // Every path follows the span grammar rooted at the braid exchange.
  for (const auto& [path, slot] : profile.entries()) {
    EXPECT_EQ(path.rfind("braid/", 0), 0u) << path;
  }
}

sim::Scenario attributed_scenario(std::size_t points) {
  return sim::Scenario(
      "obs_energy", {sim::Axis::indexed("point", points)}, {"value"},
      [](sim::SweepPoint& p) {
        const std::string device =
            "dev" + std::to_string(p.flat_index() % 3);
        BRAIDIO_ENERGY_SPAN(exchange, "sweep");
        BRAIDIO_ENERGY_SPAN(span, device.c_str());
        energy::EnergyLedger ledger;
        ledger.charge(
            energy::EnergyCategory::ActiveTx,
            util::Joules(1e-6 * static_cast<double>(p.flat_index() + 1)),
            util::Seconds(0.5 * static_cast<double>(p.flat_index())));
        ledger.charge(energy::EnergyCategory::Mcu, util::Joules(1e-9),
                      util::Seconds(obs::no_sim_time()));
        sim::RunRecord record;
        record.cells = {std::to_string(p.flat_index())};
        record.numbers = {static_cast<double>(p.flat_index())};
        return record;
      });
}

TEST(SweepEnergyProfile, MergedProfileIsIdenticalSerialVsParallel) {
  obs::set_attribution_enabled(true);
  const std::size_t points = 64;
  const auto scenario = attributed_scenario(points);

  sim::SweepOptions serial;
  serial.threads = 1;
  const auto reference = sim::SweepRunner(serial).run(scenario);
  const std::string expected = reference.energy_profile().to_json();
  // Conservation across the whole sweep: sum of the arithmetic series
  // plus the per-point MCU tick.
  const double posted =
      1e-6 * static_cast<double>(points * (points + 1) / 2) +
      1e-9 * static_cast<double>(points);
  EXPECT_NEAR(reference.energy_profile().total_joules(), posted,
              1e-12 * posted);

  for (unsigned threads : {2u, 4u, 8u}) {
    sim::SweepOptions options;
    options.threads = threads;
    const auto parallel = sim::SweepRunner(options).run(scenario);
    EXPECT_EQ(parallel.energy_profile().to_json(), expected) << threads;
  }
  obs::set_attribution_enabled(false);
}

TEST(BenchTelemetry, RoundTripsThroughJsonWithTopAttributions) {
  obs::set_attribution_enabled(true);
  sim::SweepOptions options;
  options.threads = 2;
  const auto table = sim::SweepRunner(options).run(attributed_scenario(8));
  obs::set_attribution_enabled(false);

  auto telemetry = sim::BenchTelemetry::from_table("unit_bench", table);
  EXPECT_TRUE(std::isnan(telemetry.delivered_bits_per_joule));
  const auto doc = parse_json(telemetry.to_json());
  EXPECT_EQ(doc.at("schema").string, sim::kBenchTelemetrySchema);
  EXPECT_EQ(doc.at("name").string, "unit_bench");
  EXPECT_EQ(doc.at("points").number, 8.0);
  // NaN has no JSON rendering: the field degrades to null.
  EXPECT_EQ(doc.at("delivered_bits_per_joule").kind,
            JsonValue::Kind::Null);
  EXPECT_EQ(doc.at("counters").at("sweep_points").number, 8.0);
  const auto& tops = doc.at("top_attributions").array;
  ASSERT_FALSE(tops.empty());
  EXPECT_LE(tops.size(), sim::kBenchTopAttributions);
  for (std::size_t i = 1; i < tops.size(); ++i) {
    EXPECT_GE(tops[i - 1].at("joules").number,
              tops[i].at("joules").number);
  }

  telemetry.delivered_bits_per_joule = 42.5;
  EXPECT_DOUBLE_EQ(
      parse_json(telemetry.to_json())
          .at("delivered_bits_per_joule").number,
      42.5);
}

#endif  // BRAIDIO_OBS_COMPILED

TEST(ResultTableMeta, JsonWithMetaParsesBackAndEmbedsRunInfo) {
  const auto scenario = sim::Scenario(
      "meta_demo", {sim::Axis::indexed("i", 4)}, {"v"},
      [](sim::SweepPoint& p) {
        sim::RunRecord record;
        record.cells = {std::to_string(p.flat_index())};
        record.numbers = {static_cast<double>(p.flat_index())};
        return record;
      });
  sim::SweepOptions options;
  options.threads = 2;
  options.seed = 1234;
  const auto table = sim::SweepRunner(options).run(scenario);

  const auto doc = parse_json(table.to_json_with_meta());
  EXPECT_EQ(doc.at("meta").at("scenario").string, "meta_demo");
  EXPECT_EQ(doc.at("meta").at("seed").number, 1234.0);
  EXPECT_EQ(doc.at("meta").at("points").number, 4.0);
  EXPECT_GE(doc.at("meta").at("threads").number, 1.0);
  EXPECT_GE(doc.at("meta").at("wall_seconds").number, 0.0);
  EXPECT_EQ(doc.at("meta").at("obs_compiled").kind,
            JsonValue::Kind::Bool);
  // Truncated traces must be self-announcing: the envelope carries the
  // tracer's recorded/dropped totals and the per-lane split.
  const auto& trace = doc.at("meta").at("trace");
  EXPECT_GE(trace.at("recorded").number, 0.0);
  EXPECT_GE(trace.at("dropped").number, 0.0);
  EXPECT_EQ(trace.at("lanes").kind, JsonValue::Kind::Array);
  for (const auto& lane : trace.at("lanes").array) {
    EXPECT_GE(lane.at("recorded").number, lane.at("dropped").number);
  }
  EXPECT_GE(doc.at("meta").at("energy_attribution_joules").number, 0.0);
  EXPECT_EQ(doc.at("data").at("rows").array.size(), 4u);
  // The deterministic rendering must stay free of run metadata.
  EXPECT_EQ(table.to_json().find("wall"), std::string::npos);
}

}  // namespace
