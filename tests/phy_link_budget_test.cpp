#include "phy/link_budget.hpp"

#include <gtest/gtest.h>

#include "util/units.hpp"

namespace braidio::phy {
namespace {

class LinkBudgetTest : public ::testing::Test {
 protected:
  LinkBudget budget_;
};

TEST_F(LinkBudgetTest, CalibrationAnchorsAreExact) {
  // Fig. 13's operating ranges must come back exactly from the calibrated
  // model (BER threshold crossing = anchor distance).
  EXPECT_NEAR(budget_.range_m(LinkMode::Backscatter, Bitrate::M1), 0.9, 1e-3);
  EXPECT_NEAR(budget_.range_m(LinkMode::Backscatter, Bitrate::k100), 1.8,
              1e-3);
  EXPECT_NEAR(budget_.range_m(LinkMode::Backscatter, Bitrate::k10), 2.4,
              1e-3);
  EXPECT_NEAR(budget_.range_m(LinkMode::PassiveRx, Bitrate::M1), 3.9, 1e-3);
  EXPECT_NEAR(budget_.range_m(LinkMode::PassiveRx, Bitrate::k100), 4.2, 1e-3);
  EXPECT_NEAR(budget_.range_m(LinkMode::PassiveRx, Bitrate::k10), 5.1, 1e-3);
}

TEST_F(LinkBudgetTest, ActiveModeCoversTheTestRoom) {
  // "The active mode operates well beyond 6 meters."
  for (Bitrate rate : kAllBitrates) {
    EXPECT_GT(budget_.range_m(LinkMode::Active, rate), 6.0);
    EXPECT_TRUE(budget_.available(LinkMode::Active, rate, 6.0));
  }
}

TEST_F(LinkBudgetTest, BerIsMonotoneInDistance) {
  for (LinkMode mode : kAllLinkModes) {
    for (Bitrate rate : kAllBitrates) {
      double prev = 0.0;
      for (double d = 0.1; d <= 8.0; d += 0.1) {
        const double b = budget_.ber(mode, rate, d);
        // Allow for double rounding in the deep-BER (<1e-12) regime.
        EXPECT_GE(b * (1.0 + 1e-6) + 1e-13, prev)
            << to_string(mode) << "@" << to_string(rate) << " d=" << d;
        prev = b;
      }
    }
  }
}

TEST_F(LinkBudgetTest, LowerBitratesReachFarther) {
  for (LinkMode mode : {LinkMode::PassiveRx, LinkMode::Backscatter}) {
    EXPECT_LT(budget_.range_m(mode, Bitrate::M1),
              budget_.range_m(mode, Bitrate::k100));
    EXPECT_LT(budget_.range_m(mode, Bitrate::k100),
              budget_.range_m(mode, Bitrate::k10));
  }
}

TEST_F(LinkBudgetTest, BackscatterRollsOffFasterThanPassive) {
  // Radar d^-4 vs one-way d^-2: doubling distance costs backscatter 12 dB
  // but passive only 6 dB.
  const double drop_bs = budget_.snr_db(LinkMode::Backscatter, Bitrate::M1,
                                        0.4) -
                         budget_.snr_db(LinkMode::Backscatter, Bitrate::M1,
                                        0.8);
  const double drop_pa =
      budget_.snr_db(LinkMode::PassiveRx, Bitrate::M1, 0.4) -
      budget_.snr_db(LinkMode::PassiveRx, Bitrate::M1, 0.8);
  EXPECT_NEAR(drop_bs, 12.0, 0.1);
  EXPECT_NEAR(drop_pa, 6.0, 0.1);
}

TEST_F(LinkBudgetTest, BestBitrateStepsDownWithDistance) {
  // Sec. 6.2: backscatter switches 1M -> 100k at 0.9 m -> 10k at 1.8 m and
  // dies past 2.4 m.
  EXPECT_EQ(budget_.best_bitrate(LinkMode::Backscatter, 0.5), Bitrate::M1);
  EXPECT_EQ(budget_.best_bitrate(LinkMode::Backscatter, 1.2), Bitrate::k100);
  EXPECT_EQ(budget_.best_bitrate(LinkMode::Backscatter, 2.0), Bitrate::k10);
  EXPECT_FALSE(budget_.best_bitrate(LinkMode::Backscatter, 2.6).has_value());
  EXPECT_EQ(budget_.best_bitrate(LinkMode::PassiveRx, 3.0), Bitrate::M1);
  EXPECT_EQ(budget_.best_bitrate(LinkMode::PassiveRx, 4.0), Bitrate::k100);
  EXPECT_EQ(budget_.best_bitrate(LinkMode::PassiveRx, 4.8), Bitrate::k10);
  EXPECT_FALSE(budget_.best_bitrate(LinkMode::PassiveRx, 5.5).has_value());
}

TEST_F(LinkBudgetTest, DemodulatorAssignment) {
  EXPECT_EQ(LinkBudget::ber_model(LinkMode::Active), BerModel::CoherentFsk);
  EXPECT_EQ(LinkBudget::ber_model(LinkMode::PassiveRx),
            BerModel::NoncoherentOok);
  EXPECT_EQ(LinkBudget::ber_model(LinkMode::Backscatter),
            BerModel::CoherentBpsk);
}

TEST_F(LinkBudgetTest, ReceivedPowerSanity) {
  // Passive-RX mode receives the full carrier one-way; backscatter only a
  // reflection — at equal distance the reflection is far weaker.
  const double pa = budget_.received_power_dbm(LinkMode::PassiveRx, 1.0);
  const double bs = budget_.received_power_dbm(LinkMode::Backscatter, 1.0);
  EXPECT_GT(pa, bs + 20.0);
  EXPECT_THROW(budget_.received_power_dbm(LinkMode::Active, -1.0),
               std::domain_error);
}

TEST_F(LinkBudgetTest, NoiseFloorsReflectBitrateSensitivity) {
  // Narrower bandwidth -> the calibrated effective floor drops (better
  // sensitivity at lower bitrates, as the Fig. 13 ranges imply).
  for (LinkMode mode : {LinkMode::PassiveRx, LinkMode::Backscatter}) {
    EXPECT_LT(budget_.noise_floor_dbm(mode, Bitrate::k10),
              budget_.noise_floor_dbm(mode, Bitrate::k100));
    EXPECT_LT(budget_.noise_floor_dbm(mode, Bitrate::k100),
              budget_.noise_floor_dbm(mode, Bitrate::M1));
  }
}

TEST_F(LinkBudgetTest, SnrDbAndLinearAgree) {
  const double db = budget_.snr_db(LinkMode::PassiveRx, Bitrate::M1, 2.0);
  const double lin = budget_.snr(LinkMode::PassiveRx, Bitrate::M1, 2.0);
  EXPECT_NEAR(util::linear_to_db(lin), db, 1e-9);
}

TEST(LinkBudgetConfig, CustomAnchorsShiftRanges) {
  LinkBudgetConfig cfg;
  cfg.backscatter_range_1m_bps = 1.5;
  LinkBudget budget(cfg);
  EXPECT_NEAR(budget.range_m(LinkMode::Backscatter, Bitrate::M1), 1.5, 1e-3);
}

TEST(LinkBudgetConfig, RejectsBadThreshold) {
  LinkBudgetConfig cfg;
  cfg.ber_threshold = 0.0;
  EXPECT_THROW(LinkBudget{cfg}, std::invalid_argument);
  cfg.ber_threshold = 0.6;
  EXPECT_THROW(LinkBudget{cfg}, std::invalid_argument);
}

class AvailabilitySweep
    : public ::testing::TestWithParam<std::tuple<LinkMode, Bitrate>> {};

TEST_P(AvailabilitySweep, AvailabilityMatchesRange) {
  LinkBudget budget;
  const auto [mode, rate] = GetParam();
  const double range = budget.range_m(mode, rate);
  EXPECT_TRUE(budget.available(mode, rate, range * 0.95));
  EXPECT_FALSE(budget.available(mode, rate, range * 1.05));
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, AvailabilitySweep,
    ::testing::Combine(::testing::ValuesIn(kAllLinkModes),
                       ::testing::ValuesIn(kAllBitrates)));

}  // namespace
}  // namespace braidio::phy
