#include "phy/fsk_subcarrier.hpp"
#include "util/units.hpp"

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "phy/modulation.hpp"

namespace braidio::phy {
namespace {

TEST(FskConfig, SamplesAndOrthogonality) {
  FskSubcarrierConfig cfg;  // 100 kbps, 600/900 kHz @ 8 Msps
  EXPECT_EQ(cfg.samples_per_symbol(), 80u);
  EXPECT_TRUE(cfg.tones_orthogonal());
  FskSubcarrierConfig bad = cfg;
  bad.tone1_hz = 650e3;  // 6.5 cycles per symbol: not orthogonal
  EXPECT_FALSE(bad.tones_orthogonal());
  bad.tone1_hz = bad.tone0_hz;  // identical tones are useless
  EXPECT_FALSE(bad.tones_orthogonal());
}

TEST(FskModem, RejectsBadConfigs) {
  FskSubcarrierConfig nyquist;
  nyquist.tone1_hz = 5e6;  // above fs/2
  EXPECT_THROW(FskSubcarrierModem{nyquist}, std::invalid_argument);
  FskSubcarrierConfig nonortho;
  nonortho.tone1_hz = 650e3;
  EXPECT_THROW(FskSubcarrierModem{nonortho}, std::invalid_argument);
  FskSubcarrierConfig coarse;
  coarse.sample_rate_hz = 400e3;  // 4 samples/symbol
  coarse.tone0_hz = 100e3;
  coarse.tone1_hz = 200e3;
  EXPECT_THROW(FskSubcarrierModem{coarse}, std::invalid_argument);
}

TEST(Goertzel, DetectsItsTone) {
  const double fs = 8e6;
  std::vector<double> tone(80);
  for (std::size_t k = 0; k < tone.size(); ++k) {
    tone[k] = std::cos(2.0 * std::numbers::pi * 600e3 *
                       static_cast<double>(k) / fs);
  }
  const double on_bin =
      goertzel_power(tone, util::Hertz(600e3), util::Hertz(fs));
  const double off_bin =
      goertzel_power(tone, util::Hertz(900e3), util::Hertz(fs));
  EXPECT_GT(on_bin, 100.0 * off_bin);
  EXPECT_THROW(goertzel_power({}, util::Hertz(600e3), util::Hertz(fs)),
               std::invalid_argument);
}

TEST(FskModem, NoiselessRoundTrip) {
  FskSubcarrierModem modem;
  const auto bits = random_bits(300, 3);
  const auto wave = modem.modulate(bits);
  EXPECT_EQ(wave.size(), bits.size() * 80);
  EXPECT_EQ(modem.demodulate(wave), bits);
}

TEST(FskModem, ToleratesLargeDcBackground) {
  // The whole point: a huge static background (carrier self-interference)
  // does not disturb tone detection.
  FskSubcarrierModem modem;
  const auto bits = random_bits(200, 5);
  auto wave = modem.modulate(bits);
  for (auto& s : wave) s = 5000.0 + s;
  EXPECT_EQ(modem.demodulate(wave), bits);
}

TEST(FskModem, SquareWaveIsSwitchCompatible) {
  // The modulator output must be a two-level waveform (an RF transistor
  // has exactly two states).
  FskSubcarrierModem modem;
  for (double s : modem.modulate({0, 1})) {
    EXPECT_TRUE(s == 1.0 || s == -1.0);
  }
}

TEST(FskSimulate, MatchesAnalyticAcrossSnr) {
  FskSubcarrierConfig cfg;
  for (double snr : {0.03, 0.06, 0.1}) {
    const auto r = simulate_fsk_subcarrier(cfg, snr, 150'000, 11);
    ASSERT_GT(r.analytic_ber, 1e-3);
    EXPECT_NEAR(r.measured_ber / r.analytic_ber, 1.0, 0.25)
        << "snr " << snr;
  }
}

TEST(FskSimulate, CleanAtHighSnrCoinFlipAtZero) {
  FskSubcarrierConfig cfg;
  EXPECT_EQ(simulate_fsk_subcarrier(cfg, 2.0, 20'000, 1).errors, 0u);
  const auto zero = simulate_fsk_subcarrier(cfg, 0.0, 20'000, 1);
  EXPECT_NEAR(zero.measured_ber, 0.5, 0.03);
}

TEST(FskSimulate, DeterministicPerSeedAndValidates) {
  FskSubcarrierConfig cfg;
  const auto a = simulate_fsk_subcarrier(cfg, 0.05, 20'000, 42);
  const auto b = simulate_fsk_subcarrier(cfg, 0.05, 20'000, 42);
  EXPECT_EQ(a.errors, b.errors);
  EXPECT_THROW(simulate_fsk_subcarrier(cfg, 0.05, 0, 1),
               std::invalid_argument);
  EXPECT_THROW(simulate_fsk_subcarrier(cfg, -1.0, 10, 1),
               std::invalid_argument);
}

TEST(FskVsOok, FskNeedsNoManchesterButMoreToggles) {
  // Structural comparison: at the same bitrate, the FSK tag toggles ~6-9x
  // per bit (tone cycles) where Manchester-OOK toggles ~2x. That is the
  // switch-rate price for DC immunity.
  FskSubcarrierConfig cfg;
  FskSubcarrierModem modem(cfg);
  const auto wave = modem.modulate({1});
  int toggles = 0;
  for (std::size_t i = 1; i < wave.size(); ++i) {
    if (wave[i] != wave[i - 1]) ++toggles;
  }
  EXPECT_GE(toggles, 12);  // 9 cycles of 900 kHz per 10 us symbol
  EXPECT_LE(toggles, 20);
}

class FskSnrSweep : public ::testing::TestWithParam<double> {};

TEST_P(FskSnrSweep, BerMonotoneInSnr) {
  FskSubcarrierConfig cfg;
  const double snr = GetParam();
  const auto low = simulate_fsk_subcarrier(cfg, snr, 40'000, 3);
  const auto high = simulate_fsk_subcarrier(cfg, snr * 2.0, 40'000, 3);
  EXPECT_LE(high.measured_ber, low.measured_ber + 0.01);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FskSnrSweep,
                         ::testing::Values(0.01, 0.03, 0.06, 0.1));

}  // namespace
}  // namespace braidio::phy
