#include "rf/interference.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "phy/link_budget.hpp"
#include "util/units.hpp"

namespace braidio::rf {
namespace {

TEST(Interference, LeakageBandpassShape) {
  EnvelopeInterferenceModel model;
  // Below the HP corner: mostly rejected (self-interference regime).
  EXPECT_LT(model.baseband_leakage(100.0), 0.01);
  // Exactly at the HP corner: half power.
  EXPECT_NEAR(model.baseband_leakage(2e3), 0.5, 0.01);
  // Mid-band: passes nearly intact.
  EXPECT_GT(model.baseband_leakage(200e3), 0.95);
  // Far above the LP corner: smoothed away.
  EXPECT_LT(model.baseband_leakage(40e6), 0.011);
  EXPECT_THROW(model.baseband_leakage(-1.0), std::domain_error);
}

TEST(Interference, SlowInterferersActLikeSelfInterference) {
  // A CW interferer at near-zero offset is indistinguishable from the
  // carrier: the HP filter strips its beat even when it is 30 dB above
  // the noise floor.
  EnvelopeInterferenceModel model;
  InterfererSpec slow{-30.0, 10.0};
  EXPECT_LT(model.snr_penalty_db(-60.0, slow), 0.15);
  // The same interferer parked mid-band would be catastrophic.
  InterfererSpec parked{-30.0, 200e3};
  EXPECT_GT(model.snr_penalty_db(-60.0, parked), 25.0);
}

TEST(Interference, InBandInterferenceEatsSnrOneForOne) {
  // Table 3's caveat quantified: an in-data-band interferer 10 dB above
  // the noise floor costs ~10.4 dB of SNR.
  EnvelopeInterferenceModel model;
  InterfererSpec in_band{-50.0, 200e3};
  EXPECT_NEAR(model.snr_penalty_db(-60.0, in_band), 10.4, 0.3);
  // Weak interferer at the floor: ~3 dB.
  InterfererSpec weak{-60.0, 200e3};
  EXPECT_NEAR(model.snr_penalty_db(-60.0, weak), 3.0, 0.2);
}

TEST(Interference, PenaltyNeverNegative) {
  EnvelopeInterferenceModel model;
  InterfererSpec negligible{-120.0, 200e3};
  EXPECT_GE(model.snr_penalty_db(-60.0, negligible), 0.0);
  EXPECT_LT(model.snr_penalty_db(-60.0, negligible), 0.01);
}

TEST(Interference, RangeImpactOnThePassiveLink) {
  // End-to-end: an in-band interferer at the passive link's floor level
  // costs ~3 dB -> one-way d^-2 propagation turns that into ~30% less
  // range.
  phy::LinkBudget budget;
  EnvelopeInterferenceModel model;
  const double floor_dbm =
      budget.noise_floor_dbm(phy::LinkMode::PassiveRx, phy::Bitrate::k100);
  InterfererSpec interferer{floor_dbm, 150e3};
  const double penalty =
      model.snr_penalty_db(floor_dbm, interferer);
  EXPECT_NEAR(penalty, 3.0, 0.3);
  // Degraded budget: shift the anchor by the penalty and compare ranges.
  phy::LinkBudgetConfig degraded;
  degraded.passive_range_100k =
      budget.config().passive_range_100k *
      std::pow(10.0, -penalty / 20.0);  // d^-2: 2 dB per distance decade*10
  phy::LinkBudget with_interference(degraded);
  const double clean_range =
      budget.range_m(phy::LinkMode::PassiveRx, phy::Bitrate::k100);
  const double dirty_range = with_interference.range_m(
      phy::LinkMode::PassiveRx, phy::Bitrate::k100);
  EXPECT_NEAR(dirty_range / clean_range, 0.71, 0.03);
}

TEST(Interference, Validation) {
  EnvelopeInterferenceModel bad;
  bad.highpass_corner_hz = 5e6;  // above the lowpass
  EXPECT_THROW(bad.baseband_leakage(1e3), std::domain_error);
  EnvelopeInterferenceModel model;
  EXPECT_THROW(model.effective_noise_watts(-1.0, {}), std::domain_error);
}

}  // namespace
}  // namespace braidio::rf
