// Exhaustive parameterized sweeps over the PHY surface: every
// (mode, bitrate) pair through the Monte-Carlo chain and the link budget.
#include <gtest/gtest.h>

#include "phy/waveform.hpp"
#include "rf/saw_filter.hpp"

namespace braidio::phy {
namespace {

using ModeRate = std::tuple<LinkMode, Bitrate>;

class ModeRateSweep : public ::testing::TestWithParam<ModeRate> {
 protected:
  LinkBudget budget_;
};

TEST_P(ModeRateSweep, CleanWellInsideRange) {
  const auto [mode, rate] = GetParam();
  WaveformSimConfig cfg;
  cfg.mode = mode;
  cfg.rate = rate;
  cfg.distance_m = budget_.range_m(mode, rate) * 0.5;
  cfg.bits = 20'000;
  EXPECT_EQ(simulate_waveform(budget_, cfg).bit_errors, 0u);
}

TEST_P(ModeRateSweep, RoughlyOnePercentAtTheRangeEdge) {
  const auto [mode, rate] = GetParam();
  WaveformSimConfig cfg;
  cfg.mode = mode;
  cfg.rate = rate;
  cfg.distance_m = budget_.range_m(mode, rate);
  cfg.bits = 100'000;
  const auto r = simulate_waveform(budget_, cfg);
  // The range is defined as the BER=1e-2 crossing; the MC must land there.
  EXPECT_NEAR(r.measured_ber, 0.01, 0.004)
      << to_string(mode) << "@" << to_string(rate);
}

TEST_P(ModeRateSweep, HopelessFarOutsideRange) {
  const auto [mode, rate] = GetParam();
  WaveformSimConfig cfg;
  cfg.mode = mode;
  cfg.rate = rate;
  cfg.distance_m = budget_.range_m(mode, rate) * 3.0;
  cfg.bits = 20'000;
  // The one-way active link degrades gently (d^-2, coherent); the
  // envelope links collapse much faster.
  EXPECT_GT(simulate_waveform(budget_, cfg).measured_ber, 0.15);
}

TEST_P(ModeRateSweep, CircuitChainAgreesDirectionally) {
  const auto [mode, rate] = GetParam();
  if (mode == LinkMode::Active) GTEST_SKIP() << "coherent chain";
  WaveformSimConfig cfg;
  cfg.mode = mode;
  cfg.rate = rate;
  cfg.use_circuit_chain = true;
  cfg.bits = 10'000;
  cfg.distance_m = budget_.range_m(mode, rate) * 0.6;
  const auto good = simulate_waveform(budget_, cfg);
  cfg.distance_m = budget_.range_m(mode, rate) * 2.2;
  const auto bad = simulate_waveform(budget_, cfg);
  EXPECT_LT(good.measured_ber, 1e-3);
  // The low-pass noise averaging keeps the chain a few dB better than
  // the point model, so use a gentle failure threshold.
  EXPECT_GT(bad.measured_ber, 0.03);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, ModeRateSweep,
    ::testing::Combine(::testing::ValuesIn(kAllLinkModes),
                       ::testing::ValuesIn(kAllBitrates)),
    [](const ::testing::TestParamInfo<ModeRate>& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_" +
             to_string(std::get<1>(info.param));
    });

class SawSweep : public ::testing::TestWithParam<double> {};

TEST_P(SawSweep, MonotoneSkirtsOutsideTheBand) {
  rf::SawFilter filter;
  const double f = GetParam();
  // Attenuation grows (weakly) moving away from the passband edge.
  const double towards_band =
      f < 915e6 ? f + 1e6 : f - 1e6;
  EXPECT_GE(filter.attenuation_db(f) + 1e-9,
            filter.attenuation_db(towards_band))
      << f;
}

INSTANTIATE_TEST_SUITE_P(Skirts, SawSweep,
                         ::testing::Values(880e6, 890e6, 896e6, 900e6,
                                           930e6, 934e6, 940e6, 960e6));

}  // namespace
}  // namespace braidio::phy
