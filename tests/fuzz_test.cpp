// Robustness fuzzing: the parsers and solvers must never crash, hang, or
// violate their invariants on adversarial inputs.
#include <gtest/gtest.h>

#include "core/offload.hpp"
#include "mac/fec.hpp"
#include "mac/frame.hpp"
#include "mac/probe.hpp"
#include "util/rng.hpp"

namespace braidio {
namespace {

TEST(FrameFuzz, RandomBytesNeverCrashTheParser) {
  util::Rng rng(0xF00D);
  for (int trial = 0; trial < 20'000; ++trial) {
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 64));
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    const auto frame = mac::deserialize(bytes);
    if (frame) {
      // Anything that parses must re-serialize to the same bytes.
      EXPECT_EQ(mac::serialize(*frame), bytes);
    }
  }
}

TEST(FrameFuzz, MutatedValidFramesNeverForge) {
  util::Rng rng(0xBEEF);
  mac::Frame f;
  f.type = mac::FrameType::Data;
  f.source = 3;
  f.destination = 4;
  f.payload = {10, 20, 30, 40, 50, 60};
  const auto clean = mac::serialize(f);
  int parsed_differently = 0;
  for (int trial = 0; trial < 20'000; ++trial) {
    auto bytes = clean;
    const int flips = 1 + static_cast<int>(rng.uniform_int(0, 3));
    for (int k = 0; k < flips; ++k) {
      const auto at =
          static_cast<std::size_t>(rng.uniform_int(0, bytes.size() - 1));
      bytes[at] ^= static_cast<std::uint8_t>(
          1u << rng.uniform_int(0, 7));
    }
    if (bytes == clean) continue;
    const auto parsed = mac::deserialize(bytes);
    if (parsed && *parsed == f) {
      // A CRC-16 collision that reconstructs the identical frame is
      // acceptable; a *different* frame parsing fine is the norm when the
      // corrupted bits land in the payload and the CRC collides.
      ++parsed_differently;
    }
  }
  // With 16 bits of CRC, surviving forgeries must be rare.
  EXPECT_LT(parsed_differently, 10);
}

TEST(ControlPayloadFuzz, ParsersRejectGarbageGracefully) {
  util::Rng rng(0xCAFE);
  for (int trial = 0; trial < 20'000; ++trial) {
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 16));
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    (void)mac::parse_probe(bytes);
    (void)mac::parse_probe_report(bytes);
    (void)mac::parse_battery_status(bytes);
    (void)mac::parse_mode_switch(bytes);
  }
  SUCCEED();
}

TEST(FecFuzz, DecoderHandlesArbitraryCodedStreams) {
  util::Rng rng(0xD1CE);
  for (int trial = 0; trial < 5'000; ++trial) {
    mac::CodedPayload coded;
    coded.data_bytes = static_cast<std::size_t>(rng.uniform_int(0, 64));
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 700));
    coded.coded_bits.resize(len);
    for (auto& b : coded.coded_bits) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 1));
    }
    const auto decoded = mac::fec_decode(coded);
    if (decoded) {
      EXPECT_EQ(decoded->payload.size(), coded.data_bytes);
    }
  }
}

TEST(PlannerFuzz, RandomCandidateSetsKeepInvariants) {
  util::Rng rng(0xACE);
  for (int trial = 0; trial < 3'000; ++trial) {
    const auto n = 1 + rng.uniform_int(0, 5);
    std::vector<core::ModeCandidate> candidates;
    double lo_ratio = 1e300, hi_ratio = -1e300;
    for (std::uint64_t i = 0; i < n; ++i) {
      core::ModeCandidate c;
      c.mode = phy::LinkMode::Active;
      c.rate = phy::Bitrate::M1;
      c.tx_power_w = rng.uniform(1e-6, 1.0);
      c.rx_power_w = rng.uniform(1e-6, 1.0);
      candidates.push_back(c);
      const double ratio = c.tx_power_w / c.rx_power_w;
      lo_ratio = std::min(lo_ratio, ratio);
      hi_ratio = std::max(hi_ratio, ratio);
    }
    const double e1 = rng.uniform(1.0, 1e6);
    const double e2 = rng.uniform(1.0, 1e6);
    const auto plan = core::OffloadPlanner::plan(candidates, e1, e2);
    ASSERT_FALSE(plan.entries.empty());
    double frac = 0.0;
    for (const auto& e : plan.entries) {
      ASSERT_GT(e.fraction, 0.0);
      frac += e.fraction;
    }
    EXPECT_NEAR(frac, 1.0, 1e-6);
    EXPECT_GT(plan.tx_joules_per_bit, 0.0);
    EXPECT_GT(plan.rx_joules_per_bit, 0.0);
    const double k = e1 / e2;
    if (plan.proportional) {
      EXPECT_NEAR(plan.achieved_ratio() / k, 1.0, 1e-5);
    } else {
      // Claimed infeasible: the target really must sit outside the span.
      EXPECT_TRUE(k < lo_ratio * (1.0 + 1e-9) ||
                  k > hi_ratio * (1.0 - 1e-9))
          << "k=" << k << " span=[" << lo_ratio << "," << hi_ratio << "]";
    }
  }
}

}  // namespace
}  // namespace braidio
