#include "circuits/pump_design.hpp"

#include <gtest/gtest.h>

namespace braidio::circuits {
namespace {

TEST(PumpDesign, CharacterizeProducesConsistentPoint) {
  ChargePumpConfig base;
  const auto p = PumpDesignExplorer::characterize(base);
  EXPECT_GT(p.steady_state_volts, 1.5);
  EXPECT_GT(p.settle_time_s, 0.0);
  EXPECT_GT(p.max_ook_bitrate_bps, 0.0);
  EXPECT_DOUBLE_EQ(p.output_impedance_ohms,
                   ChargePump(base).output_impedance_ohms());
  // Settle-time and bitrate are consistent by definition.
  EXPECT_NEAR(p.max_ook_bitrate_bps * 2.0 * p.settle_time_s, 1.0, 1e-9);
}

TEST(PumpDesign, SmallerCapsSettleFaster) {
  // The Table 4 design note, verified from circuit equations: scaling the
  // caps down speeds settling (higher sustainable bitrate) monotonically.
  ChargePumpConfig base;
  const auto sweep =
      PumpDesignExplorer::sweep_capacitance(base, {0.2, 1.0, 5.0});
  ASSERT_EQ(sweep.size(), 3u);
  EXPECT_LT(sweep[0].settle_time_s, sweep[1].settle_time_s);
  EXPECT_LT(sweep[1].settle_time_s, sweep[2].settle_time_s);
  EXPECT_GT(sweep[0].max_ook_bitrate_bps, sweep[2].max_ook_bitrate_bps);
}

TEST(PumpDesign, SmallerCapsRippleMore) {
  ChargePumpConfig base;
  const auto sweep =
      PumpDesignExplorer::sweep_capacitance(base, {0.2, 5.0});
  EXPECT_GT(sweep[0].ripple_volts, sweep[1].ripple_volts);
}

TEST(PumpDesign, MoreStagesMoreBoostMoreImpedance) {
  ChargePumpConfig base;
  const auto sweep = PumpDesignExplorer::sweep_stages(base, 3);
  ASSERT_EQ(sweep.size(), 3u);
  EXPECT_GT(sweep[1].steady_state_volts, sweep[0].steady_state_volts);
  EXPECT_GT(sweep[2].steady_state_volts, sweep[1].steady_state_volts);
  EXPECT_GT(sweep[2].output_impedance_ohms, sweep[0].output_impedance_ohms);
}

TEST(PumpDesign, FastDesignSupportsPaperBitrates) {
  // With the reduced capacitances (0.1x of the 100 pF default, i.e. 10 pF)
  // the pump must follow 100 kbps OOK comfortably.
  ChargePumpConfig fast;
  fast.coupling_capacitance = 10e-12;
  fast.storage_capacitance = 10e-12;
  const auto p = PumpDesignExplorer::characterize(fast);
  EXPECT_GT(p.max_ook_bitrate_bps, 100e3);
}

TEST(PumpDesign, Validation) {
  ChargePumpConfig base;
  EXPECT_THROW(PumpDesignExplorer::sweep_capacitance(base, {}),
               std::invalid_argument);
  EXPECT_THROW(PumpDesignExplorer::sweep_capacitance(base, {-1.0}),
               std::invalid_argument);
  EXPECT_THROW(PumpDesignExplorer::sweep_stages(base, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace braidio::circuits
