// Pins the logger's line format (other tooling greps these lines and the
// obs tracer shares the timestamp epoch) and covers level parsing and
// filtering.
#include <regex>
#include <string>

#include "gtest/gtest.h"
#include "util/log.hpp"

namespace {

using namespace braidio;

class UtilLogTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = util::log_level(); }
  void TearDown() override { util::set_log_level(saved_); }

 private:
  util::LogLevel saved_ = util::LogLevel::Warn;
};

TEST_F(UtilLogTest, LineFormatIsPinned) {
  util::set_log_level(util::LogLevel::Info);
  testing::internal::CaptureStderr();
  BRAIDIO_LOG_INFO << "hello";
  const std::string out = testing::internal::GetCapturedStderr();
  // [<monotonic seconds, 6 decimals>] [LEVEL] [T<thread ordinal>] msg
  const std::regex pinned(
      R"(^\[[0-9]+\.[0-9]{6}\] \[INFO\] \[T[0-9]+\] hello\n$)");
  EXPECT_TRUE(std::regex_match(out, pinned)) << "got: " << out;
}

TEST_F(UtilLogTest, LevelsRenderWithTheirOwnTags) {
  util::set_log_level(util::LogLevel::Trace);
  testing::internal::CaptureStderr();
  BRAIDIO_LOG_WARN << "w";
  BRAIDIO_LOG_ERROR << "e";
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[WARN]"), std::string::npos);
  EXPECT_NE(out.find("[ERROR]"), std::string::npos);
}

TEST_F(UtilLogTest, MessagesBelowTheLevelAreDropped) {
  util::set_log_level(util::LogLevel::Warn);
  testing::internal::CaptureStderr();
  BRAIDIO_LOG_DEBUG << "invisible";
  BRAIDIO_LOG_INFO << "also invisible";
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");

  util::set_log_level(util::LogLevel::Off);
  testing::internal::CaptureStderr();
  BRAIDIO_LOG_ERROR << "even errors";
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST_F(UtilLogTest, ParseLogLevelCoversEveryLevel) {
  const struct {
    const char* text;
    util::LogLevel level;
  } cases[] = {
      {"trace", util::LogLevel::Trace}, {"debug", util::LogLevel::Debug},
      {"info", util::LogLevel::Info},   {"warn", util::LogLevel::Warn},
      {"error", util::LogLevel::Error}, {"off", util::LogLevel::Off},
  };
  for (const auto& c : cases) {
    util::LogLevel out = util::LogLevel::Warn;
    EXPECT_TRUE(util::parse_log_level(c.text, out)) << c.text;
    EXPECT_EQ(out, c.level) << c.text;
  }
}

TEST_F(UtilLogTest, ParseLogLevelIsCaseInsensitive) {
  util::LogLevel out = util::LogLevel::Warn;
  EXPECT_TRUE(util::parse_log_level("INFO", out));
  EXPECT_EQ(out, util::LogLevel::Info);
  EXPECT_TRUE(util::parse_log_level("Error", out));
  EXPECT_EQ(out, util::LogLevel::Error);
}

TEST_F(UtilLogTest, ParseLogLevelRejectsUnknownInput) {
  util::LogLevel out = util::LogLevel::Debug;
  EXPECT_FALSE(util::parse_log_level("loud", out));
  EXPECT_FALSE(util::parse_log_level("", out));
  EXPECT_EQ(out, util::LogLevel::Debug);  // untouched on failure
}

TEST_F(UtilLogTest, MonotonicSecondsNeverGoesBackwards) {
  const double a = util::monotonic_seconds();
  const double b = util::monotonic_seconds();
  const double c = util::monotonic_seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_LE(a, b);
  EXPECT_LE(b, c);
}

TEST_F(UtilLogTest, ThreadOrdinalIsStableWithinAThread) {
  const unsigned first = util::thread_ordinal();
  EXPECT_EQ(util::thread_ordinal(), first);
  EXPECT_EQ(util::thread_ordinal(), first);
}

}  // namespace
