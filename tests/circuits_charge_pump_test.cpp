#include "circuits/charge_pump.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace braidio::circuits {
namespace {

TEST(ChargePump, Figure3SingleStageDoublesVoltage) {
  // The paper's Fig. 3(b): a 1 V sine into a single-stage RF charge pump
  // produces ~2 V DC at the output (ideal 2 V minus diode conduction loss
  // with real Schottky parameters).
  ChargePump pump;
  const auto run = pump.simulate(20e-6, 0.0, 8);
  EXPECT_GT(run.steady_state_volts, 1.6);
  EXPECT_LT(run.steady_state_volts, 2.0);
  EXPECT_DOUBLE_EQ(pump.ideal_output_volts(), 2.0);
  EXPECT_LT(run.ripple_volts, 0.1);
}

TEST(ChargePump, OutputIsMonotoneRampToSteadyState) {
  ChargePump pump;
  const auto run = pump.simulate(20e-6, 0.0, 8);
  const auto trace = run.transient.node_trace(run.output_node);
  // Starts near zero, ends near steady state, overall increasing trend.
  EXPECT_LT(trace.front(), 0.1);
  EXPECT_GT(trace.back(), 0.9 * run.steady_state_volts);
  int decreases = 0;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    if (trace[i] < trace[i - 1] - 0.02) ++decreases;
  }
  EXPECT_LT(decreases, static_cast<int>(trace.size() / 20));
}

TEST(ChargePump, MidNodeSwingsWithInput) {
  // Node "B" (between the diodes) carries the input swing shifted upward
  // (Fig. 3(b), the 0..2 V trace).
  ChargePump pump;
  const auto run = pump.simulate(20e-6, 0.0, 2);
  ASSERT_EQ(run.mid_nodes.size(), 1u);
  const double ripple = run.transient.ripple(run.mid_nodes[0]);
  EXPECT_GT(ripple, 1.0);  // swings with the full drive amplitude
  const double mean = run.transient.steady_state(run.mid_nodes[0]);
  EXPECT_GT(mean, 0.4);  // clamped above ground
}

TEST(ChargePump, StagesMultiplyBoost) {
  ChargePumpConfig c1;
  ChargePumpConfig c3;
  c3.stages = 3;
  const auto r1 = ChargePump(c1).simulate(20e-6, 0.0, 16);
  const auto r3 = ChargePump(c3).simulate(60e-6, 0.0, 16);
  EXPECT_GT(r3.steady_state_volts, 2.2 * r1.steady_state_volts);
  EXPECT_DOUBLE_EQ(ChargePump(c3).ideal_output_volts(), 6.0);
}

TEST(ChargePump, WeakInputsSufferDiodeLossesDisproportionately) {
  // Sensitivity story of Sec. 3.2: the pump's conduction losses eat a
  // larger fraction of a weak signal, which is why the instrumentation
  // amplifier is needed at low RF input levels.
  ChargePumpConfig strong;
  strong.source_amplitude = 1.0;
  ChargePumpConfig weak;
  weak.source_amplitude = 0.25;
  const auto rs = ChargePump(strong).simulate(20e-6, 0.0, 16);
  const auto rw = ChargePump(weak).simulate(20e-6, 0.0, 16);
  const double eff_strong = rs.steady_state_volts / (2.0 * 1.0);
  const double eff_weak = rw.steady_state_volts / (2.0 * 0.25);
  EXPECT_LT(eff_weak, eff_strong);
}

TEST(ChargePump, HeavierLoadDropsOutput) {
  // Zout ~ N/(f C): loading the pump below its output impedance collapses
  // the boost — the reason the amplifier must be high-impedance.
  ChargePumpConfig light;
  light.load_resistance = 1e6;
  ChargePumpConfig heavy;
  heavy.load_resistance = 5e3;  // well below Zout = 10 kohm
  const auto rl = ChargePump(light).simulate(20e-6, 0.0, 16);
  const auto rh = ChargePump(heavy).simulate(20e-6, 0.0, 16);
  EXPECT_LT(rh.steady_state_volts, 0.75 * rl.steady_state_volts);
}

TEST(ChargePump, OutputImpedanceFormula) {
  ChargePumpConfig c;
  c.stages = 2;
  c.source_frequency_hz = 1e6;
  c.coupling_capacitance = 100e-12;
  EXPECT_DOUBLE_EQ(ChargePump(c).output_impedance_ohms(), 20'000.0);
}

TEST(ChargePump, MeasuredBoostHelper) {
  ChargePumpConfig c;
  c.source_amplitude = 0.5;
  ChargePump pump(c);
  const auto run = pump.simulate(20e-6, 0.0, 16);
  EXPECT_NEAR(pump.measured_boost(run),
              run.steady_state_volts / 0.5, 1e-12);
}

TEST(ChargePump, ConfigValidation) {
  ChargePumpConfig bad;
  bad.stages = 0;
  EXPECT_THROW(ChargePump{bad}, std::invalid_argument);
  ChargePumpConfig bad2;
  bad2.load_resistance = 0.0;
  EXPECT_THROW(ChargePump{bad2}, std::invalid_argument);
  ChargePump pump;
  EXPECT_THROW(pump.simulate(0.0), std::invalid_argument);
}

class PumpAmplitudeSweep : public ::testing::TestWithParam<double> {};

TEST_P(PumpAmplitudeSweep, OutputScalesWithDrive) {
  // Output tracks ~2*A - const(losses): monotone in amplitude and bounded
  // by the ideal doubler.
  const double amp = GetParam();
  ChargePumpConfig c;
  c.source_amplitude = amp;
  const auto run = ChargePump(c).simulate(20e-6, 0.0, 16);
  EXPECT_LT(run.steady_state_volts, 2.0 * amp);
  EXPECT_GT(run.steady_state_volts, 2.0 * amp - 0.6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PumpAmplitudeSweep,
                         ::testing::Values(0.4, 0.6, 0.8, 1.0, 1.5, 2.0));

}  // namespace
}  // namespace braidio::circuits
