#include <gtest/gtest.h>

#include <cmath>

#include "baseline/bluetooth.hpp"
#include "baseline/reader.hpp"
#include "util/units.hpp"

namespace braidio::baseline {
namespace {

// ---------- Bluetooth (Table 1) ----------

TEST(BluetoothTable, HasTable1Chips) {
  const auto& table = bluetooth_chip_table();
  ASSERT_EQ(table.size(), 2u);
  EXPECT_EQ(table[0].name, "CC2541");
  EXPECT_EQ(table[1].name, "CC2640");
}

TEST(BluetoothTable, Cc2541RatioMatchesPaper) {
  // Table 1: 0.82 - 1.0.
  const auto& chip = bluetooth_chip_table()[0];
  EXPECT_NEAR(chip.ratio_low(), 0.82, 0.01);
  EXPECT_NEAR(chip.ratio_high(), 1.02, 0.02);
}

TEST(BluetoothTable, Cc2640RatioMatchesPaper) {
  // Table 1: 1.1 - 1.6.
  const auto& chip = bluetooth_chip_table()[1];
  EXPECT_NEAR(chip.ratio_low(), 1.1, 0.02);
  EXPECT_NEAR(chip.ratio_high(), 1.6, 0.05);
}

TEST(BluetoothTable, DynamicRangeIsTiny) {
  // The paper's point: commercial radios span well under one order of
  // magnitude of TX:RX asymmetry.
  for (const auto& chip : bluetooth_chip_table()) {
    EXPECT_LT(chip.ratio_high() / chip.ratio_low(), 2.0) << chip.name;
  }
}

TEST(BluetoothModel, SymmetricDrainLimitsLifetime) {
  BluetoothRadioModel model;
  // Equal batteries: lifetime set by the hungrier (TX) side.
  const double e = 3600.0;  // 1 Wh
  const double bits = model.bits_until_depletion(e, e);
  EXPECT_NEAR(bits, 1e6 * e / model.tx_power_w, 1.0);
  // A huge receiver battery does not help: TX still dies at the same time.
  EXPECT_NEAR(model.bits_until_depletion(e, 1000.0 * e), bits, 1.0);
  EXPECT_THROW(model.bits_until_depletion(-1.0, e), std::domain_error);
}

TEST(BluetoothModel, BidirectionalAveragesPower) {
  BluetoothRadioModel model;
  const double e = 3600.0;
  const double bits = model.bits_until_depletion_bidirectional(e, e);
  const double avg = 0.5 * (model.tx_power_w + model.rx_power_w);
  EXPECT_NEAR(bits, 1e6 * e / avg, 1.0);
}

TEST(BluetoothModel, PerBitEnergies) {
  BluetoothRadioModel model;
  EXPECT_NEAR(model.tx_energy_per_bit(), model.tx_power_w / 1e6, 1e-15);
  EXPECT_NEAR(model.rx_energy_per_bit(), model.rx_power_w / 1e6, 1e-15);
}

// ---------- Commercial readers (Table 2, Fig. 12) ----------

TEST(ReaderTable, MatchesTable2) {
  const auto& table = reader_table();
  ASSERT_EQ(table.size(), 6u);
  EXPECT_EQ(table[0].name, "AS3993");
  EXPECT_DOUBLE_EQ(table[0].total_power_w, 0.64);
  EXPECT_DOUBLE_EQ(table[0].cost_usd, 397.0);
  EXPECT_EQ(table[4].name, "M6e");
  EXPECT_DOUBLE_EQ(table[4].total_power_w, 4.2);
}

TEST(ReaderTable, AS3993IsTheLowestPower) {
  // The paper picks AS3993 precisely because it is the lowest-power
  // commercial reader they found.
  const auto& table = reader_table();
  for (std::size_t i = 1; i < table.size(); ++i) {
    EXPECT_GE(table[i].total_power_w, table[0].total_power_w);
  }
}

TEST(ReaderModel, RangeAnchorsAtThreeMeters) {
  CommercialReaderModel reader;
  EXPECT_NEAR(reader.range_m(), 3.0, 1e-2);
}

TEST(ReaderModel, BerMonotoneAndCrossesThreshold) {
  CommercialReaderModel reader;
  double prev = 0.0;
  for (double d = 0.2; d < 5.0; d += 0.2) {
    const double b = reader.ber(d);
    EXPECT_GE(b + 1e-15, prev);
    prev = b;
  }
  EXPECT_LT(reader.ber(2.5), 0.01);
  EXPECT_GT(reader.ber(3.5), 0.01);
}

TEST(ReaderModel, Figure12HeadlineComparison) {
  // Fig. 12 narrative: the commercial reader reaches 3 m where Braidio
  // reaches 1.8 m (~40% lower range), but draws 640 mW vs Braidio's
  // 129 mW (~5x less efficient).
  CommercialReaderModel reader;
  const double braidio_range_100k = 1.8;
  const double braidio_power = 0.129;
  EXPECT_NEAR(1.0 - braidio_range_100k / reader.range_m(), 0.40, 0.02);
  EXPECT_NEAR(reader.efficiency_ratio_vs(braidio_power), 4.96, 0.1);
  EXPECT_THROW(reader.efficiency_ratio_vs(0.0), std::domain_error);
}

TEST(ReaderModel, StrongerCarrierAndAntennaThanBraidio) {
  // Readers buy range with external antennas and more TX power; at equal
  // distance the reader's received backscatter power exceeds a chip-antenna
  // design's.
  CommercialReaderModel reader;
  phy::LinkBudget braidio;
  EXPECT_GT(reader.received_power_dbm(1.5),
            braidio.received_power_dbm(phy::LinkMode::Backscatter, 1.5));
}

TEST(ReaderModel, ConfigValidation) {
  CommercialReaderModel::Config bad;
  bad.range_100k_m = 0.0;
  EXPECT_THROW(CommercialReaderModel{bad}, std::invalid_argument);
}

TEST(ReaderModel, Figure12CurvePinnedAcrossLinkBudgetDelegation) {
  // Golden Fig. 12 curve captured before the reader model delegated its
  // propagation/BER math to phy::LinkBudget. The delegation maps the
  // radar-equation gains (2*G_reader + 2*G_tag) onto the budget's 4*G form
  // exactly, so every value must survive to ~1e-9 relative.
  struct Point {
    double d, pr_dbm, snr_db, ber;
  };
  const Point golden[] = {
      {0.5, -36.311210379865429, 35.449243221668851, 0.0},
      {1.0, -48.352410206424679, 23.408043395109601, 1.2291200465026382e-97},
      {1.5, -55.396060568651933, 16.364393032882347, 6.6749801079425883e-21},
      {2.0, -60.393610032983929, 11.366843568550351, 8.2813389304419363e-08},
      {2.5, -64.270010553306179, 7.4904430482281015, 0.00040414396504373577},
      {3.0, -67.437260395211169, 4.3231932063231113, 0.010000000000000026},
      {3.5, -70.115131980435706, 1.6453216210985744, 0.043711256130458405},
      {4.0, -72.434809859543179, -0.67435625800889909, 0.095339909188181277},
  };
  CommercialReaderModel reader;
  for (const Point& p : golden) {
    EXPECT_NEAR(reader.received_power_dbm(p.d), p.pr_dbm,
                1e-9 * std::abs(p.pr_dbm))
        << "d=" << p.d;
    EXPECT_NEAR(reader.snr_db(p.d), p.snr_db,
                1e-9 * std::max(1.0, std::abs(p.snr_db)))
        << "d=" << p.d;
    EXPECT_NEAR(reader.ber(p.d), p.ber, 1e-9 * std::max(1e-30, p.ber))
        << "d=" << p.d;
  }
  EXPECT_NEAR(reader.range_m(), 2.9999999999999973, 1e-9 * 3.0);
}

TEST(ReaderModel, SharesLinkBudgetPhysicsWithBraidio) {
  // S6: the reader's curve must come from the shared phy::LinkBudget, not
  // a private copy of the math — the exposed budget reproduces the model's
  // public outputs identically.
  CommercialReaderModel reader;
  const phy::LinkBudget& budget = reader.link_budget();
  for (double d : {0.5, 1.5, 3.0, 4.0}) {
    EXPECT_DOUBLE_EQ(
        reader.received_power_dbm(d),
        budget.received_power_dbm(phy::LinkMode::Backscatter, d));
    EXPECT_DOUBLE_EQ(reader.ber(d), budget.ber(phy::LinkMode::Backscatter,
                                               phy::Bitrate::k100, d));
  }
  EXPECT_DOUBLE_EQ(
      reader.range_m(),
      budget.range_m(phy::LinkMode::Backscatter, phy::Bitrate::k100));
}

}  // namespace
}  // namespace braidio::baseline
