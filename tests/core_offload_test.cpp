// Property suite for the carrier-offload planner (Eq. 1).
#include "core/offload.hpp"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "backends/backends.hpp"
#include "core/power_table.hpp"
#include "hal/backend.hpp"
#include "util/units.hpp"

namespace braidio::core {
namespace {

std::vector<ModeCandidate> full_rate_candidates() {
  PowerTable table;
  using phy::Bitrate;
  using phy::LinkMode;
  return {table.candidate(LinkMode::Active, Bitrate::M1),
          table.candidate(LinkMode::PassiveRx, Bitrate::M1),
          table.candidate(LinkMode::Backscatter, Bitrate::M1)};
}

double ratio_of(const OffloadPlan& plan) {
  return plan.tx_joules_per_bit / plan.rx_joules_per_bit;
}

TEST(Offload, Section4WorkedExample) {
  // Sec. 4's example outcome: a 120 mW carrier braided between the ends at
  // a 10:1 energy ratio lands at 90.9% / 9.1% carrier ownership, i.e.
  // d1 ~ 109 mW and d2 ~ 10.9 mW. (The paper's quoted per-mode powers are
  // garbled, but 109 = 0.909 x 120 and 10.9 = 0.091 x 120 pin the braid.)
  ModeCandidate carrier_at_tx{phy::LinkMode::PassiveRx, phy::Bitrate::M1,
                              0.120, 10e-6};
  ModeCandidate carrier_at_rx{phy::LinkMode::Backscatter, phy::Bitrate::M1,
                              10e-6, 0.120};
  const auto plan =
      OffloadPlanner::plan({carrier_at_tx, carrier_at_rx}, 10.0, 1.0);
  ASSERT_TRUE(plan.proportional);
  ASSERT_EQ(plan.entries.size(), 2u);
  double frac_carrier_at_tx = 0.0;
  for (const auto& e : plan.entries) {
    if (e.candidate == carrier_at_tx) frac_carrier_at_tx = e.fraction;
  }
  EXPECT_NEAR(frac_carrier_at_tx, 0.909, 0.002);
  EXPECT_NEAR(ratio_of(plan), 10.0, 1e-9);
  // Per-bit drains at 1 Mbps: 109 mW -> 109 nJ/bit, 10.9 mW -> 10.9 nJ/bit.
  EXPECT_NEAR(plan.tx_joules_per_bit * 1e9, 109.0, 1.0);
  EXPECT_NEAR(plan.rx_joules_per_bit * 1e9, 10.9, 0.2);
}

TEST(Offload, SymmetricEnergiesBraidPassiveAndBackscatter) {
  // At E1 = E2 the cheapest proportional braid alternates the carrier:
  // the Fig. 15 diagonal behavior.
  const auto plan = OffloadPlanner::plan(full_rate_candidates(), 100.0,
                                         100.0);
  ASSERT_TRUE(plan.proportional);
  EXPECT_NEAR(ratio_of(plan), 1.0, 1e-9);
  ASSERT_EQ(plan.entries.size(), 2u);
  bool has_passive = false, has_backscatter = false;
  for (const auto& e : plan.entries) {
    has_passive |= e.candidate.mode == phy::LinkMode::PassiveRx;
    has_backscatter |= e.candidate.mode == phy::LinkMode::Backscatter;
  }
  EXPECT_TRUE(has_passive);
  EXPECT_TRUE(has_backscatter);
  // Each end averages ~64.5 mW (vs 92+ mW for pure active).
  EXPECT_NEAR(plan.tx_joules_per_bit * 1e9, 64.5, 0.5);
  // Beats the active-only alternative.
  const auto active = full_rate_candidates()[0];  // copy: temporary vector
  EXPECT_LT(plan.total_joules_per_bit(),
            active.tx_joules_per_bit() + active.rx_joules_per_bit());
}

TEST(Offload, ExtremeAsymmetryPicksPureSingleMode) {
  const auto candidates = full_rate_candidates();
  // Receiver-rich: E1/E2 = 1/3546 is exactly the backscatter corner.
  const auto plan = OffloadPlanner::plan(candidates, 1.0, 3546.0);
  ASSERT_TRUE(plan.proportional);
  ASSERT_EQ(plan.entries.size(), 1u);
  EXPECT_EQ(plan.entries[0].candidate.mode, phy::LinkMode::Backscatter);
  EXPECT_NEAR(plan.entries[0].fraction, 1.0, 1e-9);
  // Transmitter-rich: E1/E2 = 2546 is exactly the passive corner.
  const auto tx_rich = OffloadPlanner::plan(candidates, 2546.0, 1.0);
  ASSERT_TRUE(tx_rich.proportional);
  ASSERT_EQ(tx_rich.entries.size(), 1u);
  EXPECT_EQ(tx_rich.entries[0].candidate.mode, phy::LinkMode::PassiveRx);
}

TEST(Offload, InfeasibleRatioClampsToBestCorner) {
  const auto candidates = full_rate_candidates();
  // E1/E2 far beyond the achievable span (TX side hugely energy-rich):
  // proportionality impossible; E2 is the binding end either way, so the
  // planner must minimize the receiver's per-bit cost -> passive-RX.
  const auto plan = OffloadPlanner::plan(candidates, 1e9, 1.0);
  EXPECT_FALSE(plan.proportional);
  ASSERT_EQ(plan.entries.size(), 1u);
  EXPECT_EQ(plan.entries[0].candidate.mode, phy::LinkMode::PassiveRx);
  // Mirror case: RX hugely rich -> backscatter protects the transmitter.
  const auto mirror = OffloadPlanner::plan(candidates, 1.0, 1e9);
  EXPECT_FALSE(mirror.proportional);
  ASSERT_EQ(mirror.entries.size(), 1u);
  EXPECT_EQ(mirror.entries[0].candidate.mode, phy::LinkMode::Backscatter);
}

TEST(Offload, PlanCostsAreConvexCombinations) {
  const auto candidates = full_rate_candidates();
  const auto plan = OffloadPlanner::plan(candidates, 5.0, 2.0);
  double t = 0.0, r = 0.0, total_fraction = 0.0;
  for (const auto& e : plan.entries) {
    t += e.fraction * e.candidate.tx_joules_per_bit();
    r += e.fraction * e.candidate.rx_joules_per_bit();
    total_fraction += e.fraction;
    EXPECT_GT(e.fraction, 0.0);
    EXPECT_LE(e.fraction, 1.0 + 1e-12);
  }
  EXPECT_NEAR(total_fraction, 1.0, 1e-9);
  EXPECT_NEAR(t, plan.tx_joules_per_bit, 1e-18);
  EXPECT_NEAR(r, plan.rx_joules_per_bit, 1e-18);
}

TEST(Offload, OptimalityAgainstDenseGridSearch) {
  // Exhaustive check of the pairwise solver: no 3-way mixture over a dense
  // fraction grid may beat the planner's cost while staying proportional.
  const auto candidates = full_rate_candidates();
  const double e1 = 7.0, e2 = 1.0;
  const auto plan = OffloadPlanner::plan(candidates, e1, e2);
  ASSERT_TRUE(plan.proportional);
  const double k = e1 / e2;
  double best_grid = 1e300;
  const int n = 300;
  for (int i = 0; i <= n; ++i) {
    for (int j = 0; j + i <= n; ++j) {
      const double p0 = static_cast<double>(i) / n;
      const double p1 = static_cast<double>(j) / n;
      const double p2 = 1.0 - p0 - p1;
      double t = 0.0, r = 0.0;
      const double ps[3] = {p0, p1, p2};
      for (int c = 0; c < 3; ++c) {
        t += ps[c] * candidates[static_cast<std::size_t>(c)]
                         .tx_joules_per_bit();
        r += ps[c] * candidates[static_cast<std::size_t>(c)]
                         .rx_joules_per_bit();
      }
      if (std::fabs(t / r - k) < 0.02 * k) {
        best_grid = std::min(best_grid, t + r);
      }
    }
  }
  // Grid points only approximate the constraint, so allow a small slack.
  EXPECT_LE(plan.total_joules_per_bit(), best_grid * 1.02);
}

TEST(Offload, BitsUntilDepletionBalancedWhenProportional) {
  const auto candidates = full_rate_candidates();
  const double e1 = util::wh_to_joules(0.78);   // Apple Watch
  const double e2 = util::wh_to_joules(6.55);   // iPhone 6S
  const auto plan = OffloadPlanner::plan(candidates, e1, e2);
  ASSERT_TRUE(plan.proportional);
  const double bits = plan.bits_until_depletion(e1, e2);
  // Both ends die together under a proportional plan.
  EXPECT_NEAR(e1 / plan.tx_joules_per_bit, e2 / plan.rx_joules_per_bit,
              bits * 1e-6);
  EXPECT_NEAR(bits, e1 / plan.tx_joules_per_bit, 1.0);
}

TEST(Offload, MoreCandidatesNeverHurt) {
  PowerTable table;
  const auto all = table.candidates();
  const auto few = full_rate_candidates();
  for (double k : {0.001, 0.2, 1.0, 40.0, 900.0}) {
    const auto plan_few = OffloadPlanner::plan(few, k, 1.0);
    const auto plan_all = OffloadPlanner::plan(all, k, 1.0);
    if (plan_few.proportional) {
      EXPECT_TRUE(plan_all.proportional) << "k=" << k;
      EXPECT_LE(plan_all.total_joules_per_bit(),
                plan_few.total_joules_per_bit() * (1.0 + 1e-9))
          << "k=" << k;
    }
  }
}

TEST(Offload, SummaryMentionsEntriesAndStatus) {
  const auto plan = OffloadPlanner::plan(full_rate_candidates(), 1.0, 1.0);
  const auto s = plan.summary();
  EXPECT_NE(s.find("%"), std::string::npos);
  EXPECT_NE(s.find("proportional"), std::string::npos);
}

TEST(Offload, InputValidation) {
  EXPECT_THROW(OffloadPlanner::plan({}, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(OffloadPlanner::plan(full_rate_candidates(), 0.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(OffloadPlanner::plan(full_rate_candidates(), 1.0, -1.0),
               std::invalid_argument);
  EXPECT_THROW(OffloadPlanner::plan_bidirectional({}, 1.0, 1.0),
               std::invalid_argument);
}

TEST(OffloadBidirectional, SymmetricCaseIsSelfConsistent) {
  const auto plan =
      OffloadPlanner::plan_bidirectional(full_rate_candidates(), 1.0, 1.0);
  ASSERT_TRUE(plan.proportional);
  EXPECT_NEAR(ratio_of(plan), 1.0, 1e-9);
  // A composite entry must carry a reverse leg.
  for (const auto& e : plan.entries) {
    EXPECT_TRUE(e.reverse.has_value());
  }
  // The symmetric composite (carrier here fwd / carrier there rev) gives
  // each end half the carrier budget: ~64.5 nJ/bit.
  EXPECT_NEAR(plan.tx_joules_per_bit * 1e9, 64.5, 0.7);
}

TEST(OffloadBidirectional, AsymmetryFavorsSmallDeviceInBothRoles) {
  // With a rich device 2, device 1 should hold the carrier in neither
  // direction: tag (backscatter TX) when sending, envelope detector
  // (passive RX) when receiving.
  const auto plan = OffloadPlanner::plan_bidirectional(
      full_rate_candidates(), 1.0, 2000.0);
  ASSERT_TRUE(plan.proportional);
  for (const auto& e : plan.entries) {
    ASSERT_TRUE(e.reverse.has_value());
    if (e.fraction > 0.5) {
      EXPECT_EQ(e.candidate.mode, phy::LinkMode::Backscatter);
      EXPECT_EQ(e.reverse->mode, phy::LinkMode::PassiveRx);
    }
  }
}

class ProportionalitySweep : public ::testing::TestWithParam<double> {};

TEST_P(ProportionalitySweep, AchievesExactRatioInsideSpan) {
  // Property: for any target drain ratio k = d1/d2 within the achievable
  // span [1/3546 (pure backscatter), 2546 (pure passive)] the plan is
  // proportional and hits the ratio exactly.
  const double k = GetParam();
  const auto plan = OffloadPlanner::plan(full_rate_candidates(), k, 1.0);
  ASSERT_TRUE(plan.proportional) << "k=" << k;
  EXPECT_NEAR(ratio_of(plan) / k, 1.0, 1e-6) << "k=" << k;
  // Optimality sanity: never worse than double the cheapest candidate sum.
  EXPECT_LT(plan.total_joules_per_bit(), 3e-7);
}

INSTANTIATE_TEST_SUITE_P(
    Ratios, ProportionalitySweep,
    ::testing::Values(1.0 / 3546.0, 1e-3, 0.01, 0.1, 0.5, 0.9524, 1.0, 2.0,
                      10.0, 100.0, 383.0, 1000.0, 2546.0));

class BidirectionalSweep : public ::testing::TestWithParam<double> {};

TEST_P(BidirectionalSweep, ProportionalAndCheaperPerBitThanTwoUnidirectional) {
  const double k = GetParam();
  const auto candidates = full_rate_candidates();
  const auto bi = OffloadPlanner::plan_bidirectional(candidates, k, 1.0);
  ASSERT_TRUE(bi.proportional) << "k=" << k;
  EXPECT_NEAR(ratio_of(bi) / k, 1.0, 1e-6);
  // Lower bound: a composite bit can never cost less than the cheapest
  // half-bit pair.
  EXPECT_GT(bi.total_joules_per_bit(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Ratios, BidirectionalSweep,
                         ::testing::Values(0.01, 0.2, 1.0, 5.0, 100.0));

// ---------- heterogeneous capability pairs (HAL backends) ----------

const hal::Capabilities& backend_caps(const char* name) {
  backends::register_all();
  return hal::BackendRegistry::instance().get(name).caps();
}

TEST(OffloadHeterogeneous, BraidioTagToReaderIsBackscatterOnly) {
  // A braidio tag uplinking to a commercial reader: Active needs both
  // ends active-capable (the reader is not); PassiveRx needs a lattice
  // entry the reader carries (its lattice is backscatter-only). What
  // remains is backscatter at every shared rate, costed per end — tag
  // reflection power against the reader's 640 mW decode chain.
  const auto candidates = OffloadPlanner::intersect_candidates(
      backend_caps(backends::kBraidio),
      backend_caps(backends::kReaderPassive));
  const PowerTable table;
  ASSERT_EQ(candidates.size(), 3u);
  for (const auto& c : candidates) {
    EXPECT_EQ(c.mode, phy::LinkMode::Backscatter);
    const auto& tag = table.candidate(phy::LinkMode::Backscatter, c.rate);
    EXPECT_DOUBLE_EQ(c.tx_power_w, tag.tx_power_w);
    EXPECT_DOUBLE_EQ(c.rx_power_w, 0.64);  // AS3993-class reader
  }
}

TEST(OffloadHeterogeneous, PlanChargesEachEndItsOwnLattice) {
  const auto plan = OffloadPlanner::plan_heterogeneous(
      backend_caps(backends::kBraidio),
      backend_caps(backends::kReaderPassive), 1.0, 2000.0);
  ASSERT_FALSE(plan.entries.empty());
  double fractions = 0.0;
  for (const auto& e : plan.entries) {
    EXPECT_EQ(e.candidate.mode, phy::LinkMode::Backscatter);
    fractions += e.fraction;
  }
  EXPECT_NEAR(fractions, 1.0, 1e-9);
  // The wall-powered reader holds the carrier and decodes coherently: it
  // must be paying orders of magnitude more per bit than the tag.
  EXPECT_GT(plan.rx_joules_per_bit, 1e3 * plan.tx_joules_per_bit);
}

TEST(OffloadHeterogeneous, BlispPairMixesActiveAndBackscatter) {
  // Two BLISP-style hybrids facing each other keep the active point and
  // all three backscatter rates; PassiveRx drops out because neither
  // lattice lists a PassiveRx entry.
  const auto candidates = OffloadPlanner::intersect_candidates(
      backend_caps(backends::kBlispHybrid),
      backend_caps(backends::kBlispHybrid));
  ASSERT_EQ(candidates.size(), 4u);
  std::size_t active = 0, backscatter = 0;
  for (const auto& c : candidates) {
    if (c.mode == phy::LinkMode::Active) ++active;
    if (c.mode == phy::LinkMode::Backscatter) ++backscatter;
  }
  EXPECT_EQ(active, 1u);
  EXPECT_EQ(backscatter, 3u);
}

TEST(OffloadHeterogeneous, DisjointCapabilityPairsThrow) {
  // BLE module vs reader: no direction works. Active needs the reader
  // active-capable; backscatter needs the BLE side to reflect; passive
  // RX needs the BLE side to source a carrier.
  const auto& ble = backend_caps(backends::kBleActive);
  const auto& reader = backend_caps(backends::kReaderPassive);
  EXPECT_TRUE(OffloadPlanner::intersect_candidates(ble, reader).empty());
  EXPECT_TRUE(OffloadPlanner::intersect_candidates(reader, ble).empty());
  EXPECT_THROW(OffloadPlanner::plan_heterogeneous(ble, reader, 1.0, 1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace braidio::core
