// HAL conformance harness: one registered backend per ctest entry
// (`hal.conformance.<backend>`), driven by --backend=NAME, plus a
// deliberately dishonest fixture driver (--broken-fixture) the suite must
// reject — proving the checks have teeth, not just that good drivers pass.
//
// Plain main (not gtest): conformance is a library function returning a
// violation list, and ctest names with '-' in them don't fit gtest's
// parameterized-name rules.
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>

#include "backends/backends.hpp"
#include "hal/backend.hpp"
#include "hal/conformance.hpp"
#include "hal/radio.hpp"

namespace {

using namespace braidio;

/// A driver that lies: its lattice declares a passive-RX point without
/// can_source_carrier, its sleep draw is zero, and its radios post only
/// half of every drain to the ledger (energy leak). The conformance suite
/// must flag all of it.
class BrokenFixtureRadio final : public hal::StandardRadio {
 public:
  using StandardRadio::StandardRadio;

  bool advance(util::Seconds elapsed) override {
    // Drain the battery directly behind the ledger's back.
    battery().drain(util::Joules(0.5 * power_draw().value() * elapsed.value()));
    return StandardRadio::advance(elapsed);
  }
};

class BrokenFixtureBackend final : public hal::RadioBackend {
 public:
  const std::string& name() const override { return name_; }
  const std::string& description() const override { return description_; }

  const hal::Capabilities& caps() const override {
    static const hal::Capabilities caps = [] {
      hal::Capabilities c;
      c.can_active = true;
      c.can_cca = false;
      c.sleep_power = util::Watts{0.0};  // violation: no finite sleep floor
      c.lattice = {
          {hal::LinkMode::Active, hal::Bitrate::M1, 0.1, 0.1},
          // Violation: passive-RX declared without can_source_carrier.
          {hal::LinkMode::PassiveRx, hal::Bitrate::k10, 0.129, 0.0},
      };
      return c;
    }();
    return caps;
  }

  const hal::ChannelModel& channel() const override {
    return braidio::backends::braidio_backend().channel();
  }

  std::unique_ptr<hal::IRadio> create_radio(
      std::string name, std::uint8_t address,
      util::WattHours battery_capacity) const override {
    return std::make_unique<BrokenFixtureRadio>(std::move(name), address,
                                                battery_capacity, caps());
  }

 private:
  std::string name_ = "broken-fixture";
  std::string description_ = "deliberately dishonest driver";
};

int run(const hal::RadioBackend& backend, bool expect_violations) {
  const auto violations = hal::conformance_violations(backend);
  for (const auto& v : violations) {
    std::cout << "[" << backend.name() << "] " << v << "\n";
  }
  if (expect_violations) {
    if (violations.empty()) {
      std::cerr << "FAIL: the broken fixture passed conformance — the "
                   "suite has no teeth\n";
      return 1;
    }
    std::cout << "OK: broken fixture rejected with " << violations.size()
              << " violation(s)\n";
    return 0;
  }
  if (!violations.empty()) {
    std::cerr << "FAIL: " << violations.size() << " conformance violation(s) "
              << "for backend '" << backend.name() << "'\n";
    return 1;
  }
  std::cout << "OK: backend '" << backend.name() << "' conforms\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string backend_name;
  bool broken = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--backend=", 0) == 0) {
      backend_name = arg.substr(10);
    } else if (arg == "--broken-fixture") {
      broken = true;
    } else {
      std::cerr << "usage: hal_conformance_test --backend=NAME | "
                   "--broken-fixture\n";
      return 2;
    }
  }
  try {
    if (broken) {
      return run(BrokenFixtureBackend{}, /*expect_violations=*/true);
    }
    if (backend_name.empty()) {
      std::cerr << "usage: hal_conformance_test --backend=NAME | "
                   "--broken-fixture\n";
      return 2;
    }
    braidio::backends::register_all();
    const auto& backend =
        braidio::hal::BackendRegistry::instance().get(backend_name);
    return run(backend, /*expect_violations=*/false);
  } catch (const std::exception& e) {
    std::cerr << "FAIL: " << e.what() << "\n";
    return 1;
  }
}
