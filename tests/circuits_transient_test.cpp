#include "circuits/transient.hpp"

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "circuits/netlist.hpp"

namespace braidio::circuits {
namespace {

TEST(Netlist, NodeAllocationAndValidation) {
  Netlist net;
  EXPECT_EQ(net.node_count(), 1u);  // ground pre-exists
  const NodeId a = net.add_node("a");
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(net.node_label(a), "a");
  EXPECT_EQ(net.node_label(0), "gnd");
  EXPECT_THROW(net.add_resistor(a, 5, 100.0), std::out_of_range);
  EXPECT_THROW(net.add_resistor(a, 0, 0.0), std::invalid_argument);
  EXPECT_THROW(net.add_capacitor(a, 0, -1e-9), std::invalid_argument);
  EXPECT_THROW(net.add_voltage_source(a, 0, nullptr), std::invalid_argument);
}

TEST(Netlist, WaveformHelpers) {
  const auto dc = dc_waveform(3.3);
  EXPECT_DOUBLE_EQ(dc(0.0), 3.3);
  EXPECT_DOUBLE_EQ(dc(1.0), 3.3);
  const auto sine = sine_waveform(2.0, 1e6);
  EXPECT_NEAR(sine(0.0), 0.0, 1e-12);
  EXPECT_NEAR(sine(0.25e-6), 2.0, 1e-9);  // quarter period peak
  const auto sq = square_waveform(-1.0, 1.0, 1e3, 0.25);
  EXPECT_DOUBLE_EQ(sq(0.0), 1.0);       // first quarter high
  EXPECT_DOUBLE_EQ(sq(0.5e-3), -1.0);   // rest low
}

TEST(Transient, ResistorDividerSteadyState) {
  Netlist net;
  const NodeId in = net.add_node("in");
  const NodeId mid = net.add_node("mid");
  net.add_voltage_source(in, 0, dc_waveform(10.0));
  net.add_resistor(in, mid, 1000.0);
  net.add_resistor(mid, 0, 3000.0);
  TransientSimulator sim(net, {.timestep_s = 1e-6});
  const auto result = sim.run(1e-5);
  EXPECT_NEAR(result.steady_state(mid), 7.5, 1e-9);
  EXPECT_NEAR(result.steady_state(in), 10.0, 1e-9);
}

TEST(Transient, RcChargingMatchesAnalyticExponential) {
  // 1 kohm + 1 uF driven by a 5 V step: v(t) = 5 (1 - e^{-t/RC}).
  Netlist net;
  const NodeId in = net.add_node("in");
  const NodeId out = net.add_node("out");
  net.add_voltage_source(in, 0, dc_waveform(5.0));
  net.add_resistor(in, out, 1000.0);
  net.add_capacitor(out, 0, 1e-6);
  TransientSimulator sim(net, {.timestep_s = 5e-6});
  const auto result = sim.run(5e-3);
  const double tau = 1e-3;
  for (const auto& s : result.samples) {
    if (s.time_s == 0.0) continue;
    const double expected = 5.0 * (1.0 - std::exp(-s.time_s / tau));
    EXPECT_NEAR(s.node_volts[out], expected, 0.05) << "t=" << s.time_s;
  }
  // At 5 tau the analytic value is 5 (1 - e^-5) = 4.966.
  EXPECT_NEAR(result.samples.back().node_volts[out],
              5.0 * (1.0 - std::exp(-5.0)), 0.02);
}

TEST(Transient, CapacitorInitialConditionHonored) {
  Netlist net;
  const NodeId out = net.add_node("out");
  net.add_resistor(out, 0, 1000.0);
  net.add_capacitor(out, 0, 1e-6, 2.0);
  TransientSimulator sim(net, {.timestep_s = 1e-6});
  const auto result = sim.run(1e-4);
  EXPECT_NEAR(result.samples.front().node_volts[out], 2.0, 1e-6);
  // Discharges through the resistor.
  EXPECT_LT(result.samples.back().node_volts[out], 2.0 * std::exp(-0.09));
}

TEST(Transient, DiodeForwardDropIsRealistic) {
  // DC source -> resistor -> diode to ground: the junction settles near the
  // Schottky forward voltage and satisfies the diode equation.
  Netlist net;
  const NodeId in = net.add_node("in");
  const NodeId anode = net.add_node("anode");
  net.add_voltage_source(in, 0, dc_waveform(3.0));
  net.add_resistor(in, anode, 10'000.0);
  Diode d;
  d.anode = anode;
  d.cathode = 0;
  d.series_resistance = 0.0;
  net.add_diode(d);
  TransientSimulator sim(net, {.timestep_s = 1e-7});
  const auto result = sim.run(1e-5);
  const double v = result.steady_state(anode);
  EXPECT_GT(v, 0.05);
  EXPECT_LT(v, 0.45);  // Schottky, not silicon
  const double i_r = (3.0 - v) / 10'000.0;
  const double i_d =
      d.saturation_current *
      (std::exp(v / (d.emission_coefficient * d.thermal_voltage)) - 1.0);
  EXPECT_NEAR(i_r / i_d, 1.0, 0.02);
}

TEST(Transient, DiodeBlocksReverse) {
  Netlist net;
  const NodeId in = net.add_node("in");
  const NodeId out = net.add_node("out");
  net.add_voltage_source(in, 0, dc_waveform(-3.0));
  net.add_resistor(in, out, 1000.0);
  Diode d;
  d.anode = out;
  d.cathode = 0;
  d.series_resistance = 0.0;
  net.add_diode(d);
  TransientSimulator sim(net, {.timestep_s = 1e-7});
  const auto result = sim.run(1e-5);
  // Reverse current is ~Is; the drop across 1k is millivolts.
  EXPECT_NEAR(result.steady_state(out), -3.0, 0.02);
}

TEST(Transient, HalfWaveRectifierWithSmoothing) {
  Netlist net;
  const NodeId in = net.add_node("in");
  const NodeId out = net.add_node("out");
  net.add_voltage_source(in, 0, sine_waveform(2.0, 1e5));
  Diode d;
  d.anode = in;
  d.cathode = out;
  d.series_resistance = 10.0;
  net.add_diode(d);
  net.add_capacitor(out, 0, 1e-7);
  net.add_resistor(out, 0, 1e6);
  TransientSimulator sim(net, {.timestep_s = 2.5e-8});
  const auto result = sim.run(2e-4, 4);
  const double v = result.steady_state(out);
  EXPECT_GT(v, 1.4);  // peak minus diode drop
  EXPECT_LT(v, 2.0);
  EXPECT_LT(result.ripple(out), 0.2);
}

TEST(Transient, SingularCircuitReported) {
  Netlist net;
  const NodeId a = net.add_node("floating");
  const NodeId b = net.add_node("b");
  net.add_resistor(a, b, 1000.0);  // island with no path to ground
  TransientSimulator sim(net, {.timestep_s = 1e-6});
  EXPECT_THROW(sim.run(1e-5), std::runtime_error);
}

TEST(Transient, InputValidation) {
  Netlist net;
  const NodeId a = net.add_node();
  net.add_resistor(a, 0, 100.0);
  EXPECT_THROW(TransientSimulator(net, {.timestep_s = 0.0}),
               std::invalid_argument);
  TransientSimulator sim(net, {.timestep_s = 1e-6});
  EXPECT_THROW(sim.run(0.0), std::invalid_argument);
  EXPECT_THROW(TransientSimulator(Netlist{}, {}), std::invalid_argument);
}

TEST(TransientResult, TraceAndStatsHelpers) {
  Netlist net;
  const NodeId in = net.add_node("in");
  net.add_voltage_source(in, 0, dc_waveform(1.0));
  net.add_resistor(in, 0, 1.0);
  TransientSimulator sim(net, {.timestep_s = 1e-6});
  const auto result = sim.run(1e-5);
  const auto trace = result.node_trace(in);
  EXPECT_EQ(trace.size(), result.samples.size());
  EXPECT_NEAR(trace.back(), 1.0, 1e-9);
  EXPECT_NEAR(result.ripple(in), 0.0, 1e-9);
  TransientResult empty;
  EXPECT_THROW(empty.steady_state(0), std::logic_error);
  EXPECT_THROW(empty.ripple(0), std::logic_error);
}

TEST(Transient, RecordEveryDecimatesSamples) {
  Netlist net;
  const NodeId in = net.add_node("in");
  net.add_voltage_source(in, 0, dc_waveform(1.0));
  net.add_resistor(in, 0, 1.0);
  TransientSimulator sim(net, {.timestep_s = 1e-6});
  const auto full = sim.run(1e-4, 1);
  const auto thin = sim.run(1e-4, 10);
  EXPECT_GT(full.samples.size(), 9 * thin.samples.size() / 2);
}

class TimestepConvergence : public ::testing::TestWithParam<double> {};

TEST_P(TimestepConvergence, RcStepErrorShrinksWithTimestep) {
  // Backward Euler is first order: error at t = tau scales with h.
  const double h = GetParam();
  Netlist net;
  const NodeId in = net.add_node("in");
  const NodeId out = net.add_node("out");
  net.add_voltage_source(in, 0, dc_waveform(1.0));
  net.add_resistor(in, out, 1000.0);
  net.add_capacitor(out, 0, 1e-6);
  TransientSimulator sim(net, {.timestep_s = h});
  const auto result = sim.run(1e-3);
  const double expected = 1.0 - std::exp(-1.0);
  const double err =
      std::fabs(result.samples.back().node_volts[out] - expected);
  EXPECT_LT(err, 1.5 * h / 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TimestepConvergence,
                         ::testing::Values(4e-5, 2e-5, 1e-5, 5e-6));

}  // namespace
}  // namespace braidio::circuits
