#include "mac/arq.hpp"

#include <gtest/gtest.h>

namespace braidio::mac {
namespace {

Frame ack_for(const Frame& data) {
  Frame ack;
  ack.type = FrameType::Ack;
  ack.source = data.destination;
  ack.destination = data.source;
  ack.sequence = data.sequence;
  return ack;
}

TEST(ArqSender, HappyPathDeliversAndAdvancesSequence) {
  ArqSender sender(1, 2);
  EXPECT_TRUE(sender.idle());
  ASSERT_TRUE(sender.submit({0xAA}));
  EXPECT_FALSE(sender.idle());
  const auto frame = sender.frame_to_send();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->sequence, 0u);
  EXPECT_EQ(frame->source, 1);
  EXPECT_EQ(frame->destination, 2);
  EXPECT_TRUE(sender.on_ack(ack_for(*frame)));
  EXPECT_TRUE(sender.idle());
  EXPECT_EQ(sender.delivered(), 1u);
  EXPECT_EQ(sender.next_sequence(), 1u);
}

TEST(ArqSender, RejectsSubmitWhileInFlight) {
  ArqSender sender(1, 2);
  ASSERT_TRUE(sender.submit({1}));
  EXPECT_FALSE(sender.submit({2}));
}

TEST(ArqSender, RetransmitsUntilBudgetExhausted) {
  ArqSender sender(1, 2, {.max_retransmissions = 3});
  ASSERT_TRUE(sender.submit({1}));
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(sender.on_timeout()) << "retry " << i;
    EXPECT_TRUE(sender.frame_to_send().has_value());
  }
  EXPECT_FALSE(sender.on_timeout());  // budget gone, frame dropped
  EXPECT_TRUE(sender.idle());
  EXPECT_EQ(sender.dropped(), 1u);
  // Sequence advanced so the next frame is distinguishable.
  EXPECT_EQ(sender.next_sequence(), 1u);
}

TEST(ArqSender, IgnoresWrongAcks) {
  ArqSender sender(1, 2);
  ASSERT_TRUE(sender.submit({1}));
  const auto frame = sender.frame_to_send();
  ASSERT_TRUE(frame.has_value());
  Frame wrong_seq = ack_for(*frame);
  wrong_seq.sequence = 99;
  EXPECT_FALSE(sender.on_ack(wrong_seq));
  Frame wrong_peer = ack_for(*frame);
  wrong_peer.source = 42;
  EXPECT_FALSE(sender.on_ack(wrong_peer));
  Frame not_ack = *frame;  // a data frame is not an ack
  EXPECT_FALSE(sender.on_ack(not_ack));
  EXPECT_FALSE(sender.idle());
  // Ack with no transfer in flight is ignored too.
  EXPECT_TRUE(sender.on_ack(ack_for(*frame)));
  EXPECT_FALSE(sender.on_ack(ack_for(*frame)));
}

TEST(ArqSender, TimeoutWithoutTransferIsNoop) {
  ArqSender sender(1, 2);
  EXPECT_FALSE(sender.on_timeout());
}

TEST(ArqSender, CountsTransmissions) {
  ArqSender sender(1, 2);
  ASSERT_TRUE(sender.submit({1}));
  sender.note_transmission();
  sender.on_timeout();
  sender.note_transmission();
  EXPECT_EQ(sender.transmissions(), 2u);
  EXPECT_EQ(sender.attempts(), 1u);
}

TEST(ArqReceiver, AcksAndDetectsDuplicates) {
  ArqSender sender(1, 2);
  ArqReceiver receiver(2);
  ASSERT_TRUE(sender.submit({7, 7}));
  const auto frame = sender.frame_to_send();
  ASSERT_TRUE(frame.has_value());

  const auto first = receiver.on_data(*frame);
  ASSERT_TRUE(first.ack.has_value());
  EXPECT_TRUE(first.fresh);
  EXPECT_EQ(first.ack->type, FrameType::Ack);
  EXPECT_EQ(first.ack->sequence, frame->sequence);

  // Retransmission of the same sequence: ack again, but not fresh.
  const auto dup = receiver.on_data(*frame);
  ASSERT_TRUE(dup.ack.has_value());
  EXPECT_FALSE(dup.fresh);
  EXPECT_EQ(receiver.received_fresh(), 1u);
  EXPECT_EQ(receiver.duplicates(), 1u);
}

TEST(ArqReceiver, IgnoresFramesForOthers) {
  ArqReceiver receiver(5);
  Frame f;
  f.type = FrameType::Data;
  f.source = 1;
  f.destination = 9;  // not us
  const auto result = receiver.on_data(f);
  EXPECT_FALSE(result.ack.has_value());
  EXPECT_FALSE(result.fresh);
  Frame ack;
  ack.type = FrameType::Ack;
  ack.destination = 5;
  EXPECT_FALSE(receiver.on_data(ack).ack.has_value());
}

TEST(Arq, LossyRoundTripEventuallyDelivers) {
  // Deterministic loss pattern: every other data frame is lost; every
  // third ack is lost. Stop-and-wait must still deliver everything once.
  ArqSender sender(1, 2, {.max_retransmissions = 10});
  ArqReceiver receiver(2);
  int data_counter = 0, ack_counter = 0;
  int fresh = 0;
  for (int msg = 0; msg < 50; ++msg) {
    ASSERT_TRUE(sender.submit({static_cast<std::uint8_t>(msg)}));
    while (true) {
      const auto frame = sender.frame_to_send();
      if (!frame) break;
      const bool data_lost = (++data_counter % 2) == 0;
      bool acked = false;
      if (!data_lost) {
        const auto result = receiver.on_data(*frame);
        if (result.fresh) ++fresh;
        const bool ack_lost = (++ack_counter % 3) == 0;
        if (result.ack && !ack_lost && sender.on_ack(*result.ack)) {
          acked = true;
        }
      }
      if (acked) break;
      if (!sender.on_timeout()) break;
    }
  }
  EXPECT_EQ(sender.delivered(), 50u);
  EXPECT_EQ(sender.dropped(), 0u);
  EXPECT_EQ(fresh, 50);
  EXPECT_GT(receiver.duplicates(), 0u);  // lost acks force duplicates
}

/// Happy-path exchanges until the sender's next sequence equals `target`.
void advance_sequence_to(ArqSender& sender, ArqReceiver& receiver,
                         std::uint16_t target) {
  while (sender.next_sequence() != target) {
    ASSERT_TRUE(sender.submit({0x11}));
    const auto frame = sender.frame_to_send();
    ASSERT_TRUE(frame.has_value());
    const auto result = receiver.on_data(*frame);
    ASSERT_TRUE(result.ack.has_value());
    ASSERT_TRUE(sender.on_ack(*result.ack));
  }
}

TEST(Arq, SequenceWrapsAroundCleanly) {
  // Drive the uint16 sequence through the full space and across the wrap:
  // 65535 -> 0 must behave exactly like any other increment.
  ArqSender sender(1, 2);
  ArqReceiver receiver(2);
  advance_sequence_to(sender, receiver, 65535);
  EXPECT_EQ(sender.next_sequence(), 65535u);

  // The wrap exchange itself.
  ASSERT_TRUE(sender.submit({0xFF}));
  const auto frame = sender.frame_to_send();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->sequence, 65535u);
  const auto result = receiver.on_data(*frame);
  ASSERT_TRUE(result.ack.has_value());
  EXPECT_TRUE(result.fresh);
  ASSERT_TRUE(sender.on_ack(*result.ack));
  EXPECT_EQ(sender.next_sequence(), 0u);

  // Post-wrap, sequence 0 is a fresh payload, not a duplicate of the
  // very first exchange.
  ASSERT_TRUE(sender.submit({0x00}));
  const auto wrapped = sender.frame_to_send();
  ASSERT_TRUE(wrapped.has_value());
  EXPECT_EQ(wrapped->sequence, 0u);
  const auto wrapped_result = receiver.on_data(*wrapped);
  ASSERT_TRUE(wrapped_result.ack.has_value());
  EXPECT_TRUE(wrapped_result.fresh);
  EXPECT_TRUE(sender.on_ack(*wrapped_result.ack));
}

TEST(Arq, WraparoundSurvivesDataLossAndDuplicateAcks) {
  // The wrap exchange under fire: the 65535-sequence data frame is lost
  // once, then delivered but its ACK lost (forcing a duplicate + dup-ACK),
  // and the retransmitted ACK completes the transfer across the wrap.
  ArqSender sender(1, 2);
  ArqReceiver receiver(2);
  advance_sequence_to(sender, receiver, 65535);

  ASSERT_TRUE(sender.submit({0xEE}));
  // Attempt 1: data frame lost on the air.
  ASSERT_TRUE(sender.frame_to_send().has_value());
  ASSERT_TRUE(sender.on_timeout());
  // Attempt 2: data delivered, ACK lost.
  const auto retry = sender.frame_to_send();
  ASSERT_TRUE(retry.has_value());
  EXPECT_EQ(retry->sequence, 65535u);
  const auto first_rx = receiver.on_data(*retry);
  ASSERT_TRUE(first_rx.ack.has_value());
  EXPECT_TRUE(first_rx.fresh);
  ASSERT_TRUE(sender.on_timeout());  // the ACK never arrived
  // Attempt 3: duplicate data; receiver must re-ACK without re-delivering.
  const auto dup = sender.frame_to_send();
  ASSERT_TRUE(dup.has_value());
  const auto dup_rx = receiver.on_data(*dup);
  ASSERT_TRUE(dup_rx.ack.has_value());
  EXPECT_FALSE(dup_rx.fresh);
  EXPECT_TRUE(sender.on_ack(*dup_rx.ack));
  EXPECT_EQ(sender.next_sequence(), 0u);
  EXPECT_EQ(receiver.duplicates(), 1u);

  // A stale 65535 dup-ACK arriving after the wrap must not complete the
  // NEXT transfer (sequence 0).
  ASSERT_TRUE(sender.submit({0x01}));
  EXPECT_FALSE(sender.on_ack(*first_rx.ack));
  const auto next = sender.frame_to_send();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->sequence, 0u);
  const auto next_rx = receiver.on_data(*next);
  ASSERT_TRUE(next_rx.ack.has_value());
  EXPECT_TRUE(next_rx.fresh);
  EXPECT_TRUE(sender.on_ack(*next_rx.ack));
}

TEST(Arq, WraparoundDropAdvancesSequenceToZero) {
  // Exhausting the retry budget at sequence 65535 must wrap the sequence
  // to 0 for the next transfer, exactly like a delivery would.
  ArqSender sender(1, 2, {.max_retransmissions = 2});
  ArqReceiver receiver(2);
  advance_sequence_to(sender, receiver, 65535);
  ASSERT_TRUE(sender.submit({0xDD}));
  EXPECT_TRUE(sender.on_timeout());
  EXPECT_TRUE(sender.on_timeout());
  EXPECT_FALSE(sender.on_timeout());  // budget exhausted, dropped
  EXPECT_TRUE(sender.idle());
  EXPECT_EQ(sender.dropped(), 1u);
  EXPECT_EQ(sender.next_sequence(), 0u);
}

}  // namespace
}  // namespace braidio::mac
