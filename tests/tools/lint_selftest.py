#!/usr/bin/env python3
"""Fixture-based self-test for tools/lint.py (rule + exit-code pins).

Runs the linter as a subprocess, exactly as CI and editors do, and
asserts:

* incremental `--paths` mode finds the planted R1/R4/R5 violations in
  the bad fixture (exit 1, one finding per planted rule),
* the clean fixture exits 0,
* a missing file exits 2 (usage/internal error),
* `--list` exits 0.

Fixtures use the .cpp_fixture suffix so the full-tree walk never picks
up the deliberate violations.

Exit status: 0 pass, 1 mismatch.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent
LINT = REPO / "tools" / "lint.py"
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"


def run(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(LINT), *args],
        capture_output=True, text=True, check=False)


def main() -> int:
    failures: list[str] = []

    def expect(condition: bool, label: str) -> None:
        print(("PASS " if condition else "FAIL ") + label)
        if not condition:
            failures.append(label)

    bad = run("--paths", str(FIXTURES / "bad.cpp_fixture"))
    expect(bad.returncode == 1, "bad fixture exits 1")
    for rule in ("no-global-rng", "no-stray-threads", "line-hygiene"):
        expect(f"[{rule}]" in bad.stdout,
               f"bad fixture trips {rule}")
    expect("[test-registration]" not in bad.stdout,
           "--paths mode skips whole-tree R3")

    clean = run("--paths", str(FIXTURES / "clean.cpp_fixture"))
    expect(clean.returncode == 0, "clean fixture exits 0")

    missing = run("--paths", str(FIXTURES / "no_such_file.cpp"))
    expect(missing.returncode == 2, "missing file exits 2")

    listing = run("--list")
    expect(listing.returncode == 0 and "R1" in listing.stdout,
           "--list exits 0 and documents the rules")

    if failures:
        print(f"\nlint selftest: {len(failures)} failure(s)",
              file=sys.stderr)
        return 1
    print("\nlint selftest: all checks pass")
    return 0


if __name__ == "__main__":
    sys.exit(main())
