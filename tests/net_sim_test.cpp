// Many-node network simulator: topology builders, the shared medium,
// node bookkeeping, energy conservation at 1k nodes, sweep determinism,
// and per-node fault targeting (DESIGN.md §15).
#include "net/network_sim.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "backends/backends.hpp"
#include "net/medium.hpp"
#include "net/node.hpp"
#include "net/topology.hpp"
#include "sim/faults/fault_timeline.hpp"
#include "sim/scenario.hpp"
#include "sim/sweep_runner.hpp"
#include "util/rng.hpp"

namespace braidio::net {
namespace {

const hal::RadioBackend& backend(const char* name) {
  backends::register_all();
  return hal::BackendRegistry::instance().get(name);
}

TEST(Topology, ParseRoundTrips) {
  EXPECT_EQ(parse_topology("star"), TopologyKind::Star);
  EXPECT_EQ(parse_topology("grid"), TopologyKind::Grid);
  EXPECT_EQ(parse_topology("rgg"), TopologyKind::RandomGeometric);
  EXPECT_EQ(parse_topology("random-geometric"),
            TopologyKind::RandomGeometric);
  EXPECT_FALSE(parse_topology("ring").has_value());
  EXPECT_STREQ(to_string(TopologyKind::Star), "star");
}

TEST(Topology, StarPutsEveryTagOneHopFromTheHub) {
  TopologyConfig config;
  config.nodes = 40;
  config.extent_m = 2.0;
  util::Rng rng(1);
  const Topology topo = build_topology(config, rng);
  ASSERT_EQ(topo.size(), 41u);
  EXPECT_EQ(topo.reachable(), 41u);
  EXPECT_EQ(topo.max_hops(), 1u);
  for (std::size_t i = 1; i < topo.size(); ++i) {
    EXPECT_EQ(topo.next_hop[i], 0u);
    EXPECT_LE(distance_m(topo.positions[i], topo.positions[0]),
              config.extent_m + 1e-9);
  }
}

TEST(Topology, GridRoutesStepBetweenLatticeNeighbors) {
  TopologyConfig config;
  config.kind = TopologyKind::Grid;
  config.nodes = 24;  // 5x5 lattice including the hub
  config.extent_m = 4.0;
  config.link_range_m = 1.0;  // pitch wins when larger
  util::Rng rng(1);
  const Topology topo = build_topology(config, rng);
  ASSERT_EQ(topo.size(), 25u);
  EXPECT_EQ(topo.reachable(), 25u);
  EXPECT_GE(topo.max_hops(), 2u);  // corners are multi-hop from center
  for (std::size_t i = 1; i < topo.size(); ++i) {
    ASSERT_NE(topo.next_hop[i], kNoRoute);
    EXPECT_EQ(topo.hops[i], topo.hops[topo.next_hop[i]] + 1);
  }
}

TEST(Topology, RandomGeometricIsDeterministicPerSeed) {
  TopologyConfig config;
  config.kind = TopologyKind::RandomGeometric;
  config.nodes = 50;
  config.extent_m = 2.0;
  config.link_range_m = 1.0;
  util::Rng rng_a(9), rng_b(9), rng_c(10);
  const Topology a = build_topology(config, rng_a);
  const Topology b = build_topology(config, rng_b);
  const Topology c = build_topology(config, rng_c);
  ASSERT_EQ(a.size(), b.size());
  bool same_as_c = a.size() == c.size();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.positions[i].x_m, b.positions[i].x_m);
    EXPECT_EQ(a.positions[i].y_m, b.positions[i].y_m);
    EXPECT_EQ(a.next_hop[i], b.next_hop[i]);
    if (same_as_c && (a.positions[i].x_m != c.positions[i].x_m)) {
      same_as_c = false;
    }
  }
  EXPECT_FALSE(same_as_c);  // a different seed really moves the nodes
  // Routes, when present, always shorten the hop count by one.
  for (std::size_t i = 1; i < a.size(); ++i) {
    if (a.next_hop[i] == kNoRoute) continue;
    EXPECT_EQ(a.hops[i], a.hops[a.next_hop[i]] + 1);
    EXPECT_LE(distance_m(a.positions[i], a.positions[a.next_hop[i]]),
              config.link_range_m + 1e-9);
  }
}

TEST(Topology, RejectsBadConfig) {
  util::Rng rng(1);
  TopologyConfig zero_nodes;
  zero_nodes.nodes = 0;
  EXPECT_THROW(build_topology(zero_nodes, rng), std::invalid_argument);
  TopologyConfig bad_extent;
  bad_extent.extent_m = 0.0;
  EXPECT_THROW(build_topology(bad_extent, rng), std::invalid_argument);
  TopologyConfig bad_range;
  bad_range.link_range_m = -1.0;
  EXPECT_THROW(build_topology(bad_range, rng), std::invalid_argument);
}

TEST(SharedMedium, TracksAmbientAndPenalty) {
  const std::vector<Vec2> positions{{0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}};
  MediumConfig config;
  SharedMedium medium(config, positions);
  // Quiet channel: ambient is the bare noise floor, penalty zero.
  EXPECT_NEAR(medium.ambient_dbm(0, 0), config.noise_floor_dbm, 1e-9);
  EXPECT_DOUBLE_EQ(medium.interference_penalty_db(0, 1), 0.0);

  medium.begin(2, 0, 1.0, config.tx_power_dbm);
  EXPECT_EQ(medium.active_count(), 1u);
  // Node 1 hears node 2 at 1 m: 0 dBm - 40 dB ref loss = -40 dBm, which
  // dominates the -90 dBm floor.
  EXPECT_NEAR(medium.ambient_dbm(1, 1), -40.0, 0.1);
  // The receiver of an interfered link eats a positive SNR penalty; the
  // interfering link's own receiver (excluded tx) does not.
  EXPECT_GT(medium.interference_penalty_db(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(medium.interference_penalty_db(0, 2), 0.0);
  medium.end(2);
  EXPECT_EQ(medium.active_count(), 0u);
  EXPECT_NEAR(medium.ambient_dbm(1, 1), config.noise_floor_dbm, 1e-9);
}

TEST(SharedMedium, PathLossFollowsTheLogDistanceModel) {
  const std::vector<Vec2> positions{{0.0, 0.0}};
  MediumConfig config;
  SharedMedium medium(config, positions);
  EXPECT_NEAR(medium.path_loss_db(1.0), config.ref_loss_db, 1e-12);
  EXPECT_NEAR(medium.path_loss_db(10.0),
              config.ref_loss_db + 10.0 * config.path_loss_exponent,
              1e-9);
  // The 1 cm floor keeps colocated nodes finite.
  EXPECT_EQ(medium.path_loss_db(0.0), medium.path_loss_db(0.01));
}

TEST(NetworkSimulator, RejectsBadConfig) {
  NetConfig no_backend;
  EXPECT_THROW(NetworkSimulator{no_backend}, std::invalid_argument);
  NetConfig big_payload;
  big_payload.backend = &backend(backends::kBraidio);
  big_payload.payload_bytes = 100000;
  EXPECT_THROW(NetworkSimulator{big_payload}, std::invalid_argument);
}

TEST(NetworkSimulator, DeliversOnAQuietStar) {
  NetConfig config;
  config.backend = &backend(backends::kBraidio);
  config.topology.nodes = 4;
  config.topology.extent_m = 0.4;
  config.packets_per_node = 2;
  NetworkSimulator sim(config);
  EXPECT_FALSE(sim.link_point(0).has_value());  // the hub has no uplink
  const NetStats stats = sim.run();
  EXPECT_EQ(stats.generated, 8u);
  EXPECT_EQ(stats.delivered, 8u);
  EXPECT_EQ(stats.forwarded, 0u);
  EXPECT_EQ(stats.reachable, 5u);
  EXPECT_EQ(stats.planned, 4u);
  EXPECT_GT(stats.hub_joules, 0.0);
  EXPECT_GT(stats.bits_per_joule(), 0.0);
  for (std::uint32_t i = 1; i < 5; ++i) {
    EXPECT_TRUE(sim.link_point(i).has_value());
    EXPECT_EQ(sim.node(i).stats().delivered, 2u);
  }
}

TEST(NetworkSimulator, GridRelaysMultiHopTraffic) {
  NetConfig config;
  config.backend = &backend(backends::kBraidio);
  config.topology.kind = TopologyKind::Grid;
  config.topology.nodes = 24;
  config.topology.extent_m = 2.0;  // 0.5 m pitch: links well inside range
  config.topology.link_range_m = 0.6;
  config.packets_per_node = 1;
  NetworkSimulator sim(config);
  ASSERT_GE(sim.topology().max_hops(), 2u);
  const NetStats stats = sim.run();
  EXPECT_GT(stats.forwarded, 0u);  // relays really carried frames
  EXPECT_GT(stats.delivered, stats.generated / 2);
}

TEST(NetworkSimulator, ReaderPassiveBackendRunsWithoutCca) {
  // Pure backscatter tags have no receiver to sense with: the run must
  // rely on backoff jitter alone and still deliver on a small star.
  NetConfig config;
  config.backend = &backend(backends::kReaderPassive);
  config.topology.nodes = 6;
  config.topology.extent_m = 0.4;
  config.packets_per_node = 2;
  NetworkSimulator sim(config);
  const NetStats stats = sim.run();
  EXPECT_EQ(stats.csma_failures, 0u);  // no CCA, no CCA failures
  EXPECT_GT(stats.delivered, 0u);
}

TEST(NetworkSimulator, EnergyConservesExactlyAcrossAThousandNodes) {
  NetConfig config;
  config.backend = &backend(backends::kBraidio);
  config.topology.nodes = 1000;
  config.topology.extent_m = 1.5;
  config.packets_per_node = 1;
  config.kick_spread_s = 0.25;
  NetworkSimulator sim(config);
  const NetStats stats = sim.run();
  ASSERT_EQ(stats.node_joules.size(), 1001u);
  ASSERT_EQ(sim.node_count(), 1001u);

  // The global total is EXACTLY the index-ordered sum of the per-node
  // ledgers — same values, same order, same floating-point result.
  double sum = 0.0;
  for (const double j : stats.node_joules) sum += j;
  EXPECT_EQ(stats.total_joules, sum);
  EXPECT_EQ(stats.hub_joules, stats.node_joules[0]);

  // Each node's ledger is the stats value verbatim, covers the whole
  // run (sleep fill), and matches its battery's drain.
  for (std::uint32_t i = 0; i < 1001; ++i) {
    const hal::IRadio& radio = sim.node(i).radio();
    EXPECT_EQ(stats.node_joules[i], radio.ledger().total_joules());
    const double drained = radio.battery().capacity_joules() -
                           radio.battery().remaining_joules();
    EXPECT_NEAR(radio.ledger().total_joules(), drained,
                1e-9 * radio.battery().capacity_joules());
    EXPECT_GE(radio.clock_s(), stats.elapsed_s);
  }
}

TEST(NetworkSimulator, SweepsAreByteIdenticalSerialVsParallel) {
  const auto run_with_threads = [&](unsigned threads) {
    sim::Scenario scenario(
        "net_determinism", {sim::Axis::indexed("replica", 6)},
        {"events", "delivered", "joules"},
        [&](sim::SweepPoint& p) {
          NetConfig config;
          config.backend = &backend(backends::kBraidio);
          config.topology.kind = TopologyKind::RandomGeometric;
          config.topology.nodes = 48;
          config.topology.extent_m = 1.5;
          config.topology.link_range_m = 0.8;
          config.packets_per_node = 2;
          config.seed = p.seed();
          NetworkSimulator sim(config);
          const NetStats stats = sim.run();
          std::ostringstream joules;
          joules.precision(17);
          joules << stats.total_joules;
          sim::RunRecord record;
          record.cells = {std::to_string(stats.events),
                          std::to_string(stats.delivered), joules.str()};
          return record;
        });
    sim::SweepOptions options;
    options.threads = threads;
    return sim::SweepRunner(options).run(scenario).to_csv();
  };
  const std::string serial = run_with_threads(1);
  const std::string parallel = run_with_threads(4);
  EXPECT_EQ(serial, parallel);
}

TEST(NetworkSimulator, NodeTargetedFaultsHitOnlyTheirNode) {
  // Tag 1 sits under a run-long carrier dropout; tag 2 is untouched.
  std::istringstream script("dropout 0 1e6 @1\n");
  std::string error;
  const auto timeline = sim::faults::FaultTimeline::parse(script, &error);
  ASSERT_TRUE(timeline.has_value()) << error;
  const sim::faults::ImpairmentSchedule schedule(*timeline);

  NetConfig config;
  config.backend = &backend(backends::kBraidio);
  config.topology.nodes = 2;
  config.topology.extent_m = 0.3;
  config.packets_per_node = 2;
  config.impairments = &schedule;
  NetworkSimulator sim(config);
  const NetStats stats = sim.run();
  EXPECT_EQ(sim.node(1).stats().delivered, 0u);  // dropout eats every try
  EXPECT_EQ(sim.node(2).stats().delivered, 2u);
  EXPECT_EQ(stats.arq_drops, 2u);  // both of tag 1's frames timed out
}

}  // namespace
}  // namespace braidio::net
