#include "phy/waveform.hpp"

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

namespace braidio::phy {
namespace {

class WaveformTest : public ::testing::Test {
 protected:
  LinkBudget budget_;
};

TEST_F(WaveformTest, IdealPathMatchesAnalyticBackscatter) {
  WaveformSimConfig cfg;
  cfg.mode = LinkMode::Backscatter;
  cfg.rate = Bitrate::M1;
  cfg.distance_m = 0.82;  // analytic BER ~ 3e-3
  cfg.bits = 300'000;
  const auto result = simulate_waveform(budget_, cfg);
  ASSERT_GT(result.analytic_ber, 1e-4);
  EXPECT_NEAR(result.measured_ber / result.analytic_ber, 1.0, 0.25);
}

TEST_F(WaveformTest, IdealPathMatchesAnalyticPassive) {
  WaveformSimConfig cfg;
  cfg.mode = LinkMode::PassiveRx;
  cfg.rate = Bitrate::M1;
  cfg.distance_m = 3.6;
  cfg.bits = 300'000;
  const auto result = simulate_waveform(budget_, cfg);
  ASSERT_GT(result.analytic_ber, 1e-4);
  EXPECT_NEAR(result.measured_ber / result.analytic_ber, 1.0, 0.25);
}

TEST_F(WaveformTest, IdealPathMatchesAnalyticActive) {
  WaveformSimConfig cfg;
  cfg.mode = LinkMode::Active;
  cfg.rate = Bitrate::M1;
  cfg.distance_m = 24.0;  // near the calibrated range -> measurable BER
  cfg.bits = 300'000;
  const auto result = simulate_waveform(budget_, cfg);
  ASSERT_GT(result.analytic_ber, 1e-4);
  EXPECT_NEAR(result.measured_ber / result.analytic_ber, 1.0, 0.25);
}

TEST_F(WaveformTest, CircuitChainCleanAtHighSnr) {
  WaveformSimConfig cfg;
  cfg.mode = LinkMode::Backscatter;
  cfg.rate = Bitrate::M1;
  cfg.distance_m = 0.4;
  cfg.bits = 20'000;
  cfg.use_circuit_chain = true;
  const auto result = simulate_waveform(budget_, cfg);
  EXPECT_EQ(result.bit_errors, 0u);
}

TEST_F(WaveformTest, CircuitChainDegradesGracefullyNearRange) {
  // At the operating-range edge the full chain must show errors but stay
  // within an order of magnitude of the analytic point model (the low-pass
  // averages noise, so it is usually *better*).
  WaveformSimConfig cfg;
  cfg.mode = LinkMode::Backscatter;
  cfg.rate = Bitrate::M1;
  cfg.distance_m = 0.93;
  cfg.bits = 60'000;
  cfg.use_circuit_chain = true;
  const auto result = simulate_waveform(budget_, cfg);
  EXPECT_GT(result.measured_ber, 0.0);
  EXPECT_LT(result.measured_ber, result.analytic_ber * 10.0);
}

TEST_F(WaveformTest, CircuitChainMonotoneWithDistance) {
  WaveformSimConfig cfg;
  cfg.mode = LinkMode::PassiveRx;
  cfg.rate = Bitrate::k100;
  cfg.bits = 30'000;
  cfg.use_circuit_chain = true;
  double prev = -1.0;
  for (double d : {3.8, 4.6, 5.4}) {
    cfg.distance_m = d;
    const auto r = simulate_waveform(budget_, cfg);
    EXPECT_GE(r.measured_ber, prev) << "d=" << d;
    prev = r.measured_ber;
  }
  EXPECT_GT(prev, 1e-3);  // well beyond range: heavy losses
  // (The circuit chain's low-pass averages noise across samples, so its
  // absolute BER sits below the single-sample analytic model.)
}

TEST_F(WaveformTest, PhaseCancellationNullKillsBackscatter) {
  // Fig. 4(a): at theta = pi/2 the envelope detector cannot see the tag at
  // all, regardless of SNR.
  WaveformSimConfig cfg;
  cfg.mode = LinkMode::Backscatter;
  cfg.rate = Bitrate::M1;
  cfg.distance_m = 0.3;  // very high SNR
  cfg.bits = 20'000;
  cfg.cancellation_angle_rad = std::numbers::pi / 2.0;
  const auto result = simulate_waveform(budget_, cfg);
  EXPECT_NEAR(result.measured_ber, 0.5, 0.05);
  EXPECT_NEAR(result.analytic_ber, 0.5, 1e-6);

  // Partially rotated: degraded but decodable; matches cos^2 analytic.
  cfg.distance_m = 0.8;
  cfg.cancellation_angle_rad = std::numbers::pi / 5.0;
  cfg.bits = 300'000;
  const auto partial = simulate_waveform(budget_, cfg);
  ASSERT_GT(partial.analytic_ber, 1e-4);
  EXPECT_NEAR(partial.measured_ber / partial.analytic_ber, 1.0, 0.3);
}

TEST_F(WaveformTest, DeterministicForSeed) {
  WaveformSimConfig cfg;
  cfg.mode = LinkMode::Backscatter;
  cfg.rate = Bitrate::M1;
  cfg.distance_m = 0.89;  // BER ~ 1e-2: hundreds of errors expected
  cfg.bits = 50'000;
  cfg.seed = 77;
  const auto a = simulate_waveform(budget_, cfg);
  const auto b = simulate_waveform(budget_, cfg);
  EXPECT_EQ(a.bit_errors, b.bit_errors);
  ASSERT_GT(a.bit_errors, 50u);
  cfg.seed = 78;
  const auto c = simulate_waveform(budget_, cfg);
  EXPECT_NE(a.bit_errors, c.bit_errors);
}

TEST_F(WaveformTest, InputValidation) {
  WaveformSimConfig cfg;
  cfg.bits = 0;
  EXPECT_THROW(simulate_waveform(budget_, cfg), std::invalid_argument);
  WaveformSimConfig odd;
  odd.use_circuit_chain = true;
  odd.samples_per_bit = 5;  // Manchester needs an even split
  EXPECT_THROW(simulate_waveform(budget_, odd), std::invalid_argument);
}

class CrossValidation
    : public ::testing::TestWithParam<std::tuple<LinkMode, double>> {};

TEST_P(CrossValidation, IdealMonteCarloTracksAnalytic) {
  // Property: wherever the analytic BER is measurable (>= 1e-3), the ideal
  // detection path must reproduce it within Monte-Carlo tolerance.
  LinkBudget budget;
  const auto [mode, frac_of_range] = GetParam();
  WaveformSimConfig cfg;
  cfg.mode = mode;
  cfg.rate = Bitrate::k100;
  cfg.distance_m = budget.range_m(mode, cfg.rate) * frac_of_range;
  cfg.bits = 200'000;
  const auto result = simulate_waveform(budget, cfg);
  if (result.analytic_ber < 1e-3) GTEST_SKIP() << "BER too small to measure";
  EXPECT_NEAR(result.measured_ber / result.analytic_ber, 1.0, 0.3);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrossValidation,
    ::testing::Combine(::testing::Values(LinkMode::Backscatter,
                                         LinkMode::PassiveRx,
                                         LinkMode::Active),
                       ::testing::Values(0.95, 1.0, 1.05)));

}  // namespace
}  // namespace braidio::phy
