#include "phy/spectrum.hpp"
#include "util/units.hpp"

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "phy/fsk_subcarrier.hpp"
#include "phy/modulation.hpp"

namespace braidio::phy {
namespace {

TEST(Fft, PowerOfTwoHelpers) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(1024));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(12));
  EXPECT_EQ(next_power_of_two(1), 1u);
  EXPECT_EQ(next_power_of_two(17), 32u);
  EXPECT_THROW(next_power_of_two(0), std::invalid_argument);
}

TEST(Fft, DeltaTransformsToFlatSpectrum) {
  std::vector<std::complex<double>> x(8, {0.0, 0.0});
  x[0] = {1.0, 0.0};
  fft(x);
  for (const auto& v : x) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SingleToneLandsInItsBin) {
  const std::size_t n = 64;
  std::vector<std::complex<double>> x(n);
  const int bin = 5;
  for (std::size_t k = 0; k < n; ++k) {
    x[k] = std::polar(1.0, 2.0 * std::numbers::pi * bin *
                               static_cast<double>(k) / n);
  }
  fft(x);
  for (std::size_t k = 0; k < n; ++k) {
    if (k == static_cast<std::size_t>(bin)) {
      EXPECT_NEAR(std::abs(x[k]), static_cast<double>(n), 1e-9);
    } else {
      EXPECT_NEAR(std::abs(x[k]), 0.0, 1e-9);
    }
  }
}

TEST(Fft, RoundTripAndParseval) {
  util::Rng rng(21);
  std::vector<std::complex<double>> x(256);
  double time_energy = 0.0;
  for (auto& v : x) {
    v = {rng.gaussian(), rng.gaussian()};
    time_energy += std::norm(v);
  }
  auto spectrum = x;
  fft(spectrum);
  double freq_energy = 0.0;
  for (const auto& v : spectrum) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / (256.0 * time_energy), 1.0, 1e-9);  // Parseval
  fft(spectrum, /*inverse=*/true);
  for (std::size_t k = 0; k < x.size(); ++k) {
    EXPECT_NEAR(std::abs(spectrum[k] - x[k]), 0.0, 1e-9);
  }
  std::vector<std::complex<double>> bad(12);
  EXPECT_THROW(fft(bad), std::invalid_argument);
}

TEST(Welch, FindsAToneAboveTheFloor) {
  const double fs = 1e6;
  std::vector<double> sig(8192);
  util::Rng rng(5);
  for (std::size_t k = 0; k < sig.size(); ++k) {
    sig[k] = std::sin(2.0 * std::numbers::pi * 125e3 *
                      static_cast<double>(k) / fs) +
             0.01 * rng.gaussian();
  }
  const auto psd = welch_psd(sig, util::Hertz(fs));
  // Peak bin near 125 kHz, well above the noise floor.
  double peak_freq = 0.0, peak_db = -1e9, floor_db = 0.0;
  int floor_count = 0;
  for (std::size_t k = 1; k < psd.freq_hz.size(); ++k) {
    if (psd.power_db[k] > peak_db) {
      peak_db = psd.power_db[k];
      peak_freq = psd.freq_hz[k];
    }
    if (psd.freq_hz[k] > 300e3) {
      floor_db += psd.power_db[k];
      ++floor_count;
    }
  }
  floor_db /= floor_count;
  EXPECT_NEAR(peak_freq, 125e3, 5e3);
  EXPECT_GT(peak_db - floor_db, 20.0);
  EXPECT_THROW(welch_psd({1.0, 2.0}, util::Hertz(fs)), std::invalid_argument);
}

TEST(Spectrum, ManchesterMovesEnergyOffDc) {
  // The Sec. 3.1 argument, quantified: NRZ OOK keeps a large share of its
  // power near DC (where self-interference lives); Manchester relocates
  // it to >= half the bit rate.
  const double fs = 8e6;
  const auto bits = random_bits(4096, 9);
  OokModulatorConfig mod;
  mod.samples_per_bit = 8;
  auto nrz = ook_modulate(bits, mod);
  mod.samples_per_bit = 4;  // half-bits at the same data rate
  auto manchester = ook_modulate(manchester_encode(bits), mod);
  // Remove the constant on-fraction mean: the envelope detector's
  // high-pass strips any static offset for free; what matters is where
  // the *information-bearing variation* lives.
  auto remove_mean = [](std::vector<double>& v) {
    double m = 0.0;
    for (double x : v) m += x;
    m /= static_cast<double>(v.size());
    for (double& x : v) x -= m;
  };
  remove_mean(nrz);
  remove_mean(manchester);

  const util::Hertz corner{100e3};  // below the 1 Mbps data band
  const double nrz_low =
      power_fraction_below(welch_psd(nrz, util::Hertz(fs)), corner);
  const double man_low =
      power_fraction_below(welch_psd(manchester, util::Hertz(fs)), corner);
  EXPECT_GT(nrz_low, 0.1);   // NRZ: sinc^2 piles up toward DC
  EXPECT_LT(man_low, nrz_low / 10.0);  // Manchester: band starts at R/2
}

TEST(Spectrum, FskSubcarrierConcentratesAtItsTones) {
  FskSubcarrierConfig cfg;  // tones 600/900 kHz @ 8 Msps
  FskSubcarrierModem modem(cfg);
  const auto wave = modem.modulate(random_bits(2048, 11));
  const auto psd = welch_psd(wave, util::Hertz(cfg.sample_rate_hz));
  // Almost no energy below 100 kHz; strong energy near the tones.
  EXPECT_LT(power_fraction_below(psd, util::Hertz(100e3)), 0.05);
  double near_tones = 0.0, total = 0.0;
  for (std::size_t k = 0; k < psd.freq_hz.size(); ++k) {
    const double p = std::pow(10.0, psd.power_db[k] / 10.0);
    total += p;
    const double f = psd.freq_hz[k];
    if ((f > 500e3 && f < 1e6)) near_tones += p;
  }
  EXPECT_GT(near_tones / total, 0.5);
}

}  // namespace
}  // namespace braidio::phy
