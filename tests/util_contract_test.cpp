// Death tests for the contract layer: every checker must abort with a
// diagnostic on bad input and pass good values through unchanged, and each
// module's public API must reject physically-nonsensical input (NaNs and
// out-of-range values that the documented std::invalid_argument /
// std::domain_error checks cannot catch).
#include "util/contract.hpp"

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "circuits/netlist.hpp"
#include "circuits/transient.hpp"
#include "core/offload.hpp"
#include "energy/battery.hpp"
#include "mac/arq.hpp"
#include "mac/frame.hpp"
#include "phy/ber.hpp"
#include "rf/pathloss.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace braidio {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// All contract failures share this stderr signature.
constexpr char kDies[] = "braidio contract violation";

#if BRAIDIO_CONTRACTS_ENABLED

// --- checker death tests -------------------------------------------------

TEST(ContractCheckersDeathTest, ProbabilityRejectsOutOfRangeAndNan) {
  EXPECT_DEATH(util::contract::check_probability(-0.1, "p"), kDies);
  EXPECT_DEATH(util::contract::check_probability(1.1, "p"), kDies);
  EXPECT_DEATH(util::contract::check_probability(kNan, "p"), kDies);
}

TEST(ContractCheckersDeathTest, EnergyRejectsNegativeAndNonFinite) {
  EXPECT_DEATH(util::contract::check_nonneg_energy_j(-1e-12, "e"), kDies);
  EXPECT_DEATH(util::contract::check_nonneg_energy_j(kNan, "e"), kDies);
  EXPECT_DEATH(util::contract::check_nonneg_energy_j(kInf, "e"), kDies);
}

TEST(ContractCheckersDeathTest, PowerDbmRejectsOutsideRange) {
  EXPECT_DEATH(util::contract::check_power_dbm_range(-300.0, "tx"), kDies);
  EXPECT_DEATH(util::contract::check_power_dbm_range(100.0, "tx"), kDies);
  EXPECT_DEATH(util::contract::check_power_dbm_range(kNan, "tx"), kDies);
  EXPECT_DEATH(util::contract::check_power_dbm_range(5.0, "tx", 10.0, 20.0),
               kDies);
}

TEST(ContractCheckersDeathTest, FiniteRejectsNanAndInf) {
  EXPECT_DEATH(util::contract::check_finite(kNan, "x"), kDies);
  EXPECT_DEATH(util::contract::check_finite(kInf, "x"), kDies);
  EXPECT_DEATH(util::contract::check_finite(-kInf, "x"), kDies);
}

TEST(ContractCheckersDeathTest, MacrosReportAllThreeKinds) {
  EXPECT_DEATH(BRAIDIO_REQUIRE(1 == 2, "lhs", 1, "rhs", 2), "REQUIRE");
  EXPECT_DEATH(BRAIDIO_ENSURE(false), "ENSURE");
  EXPECT_DEATH(BRAIDIO_INVARIANT(false), "INVARIANT");
}

// --- per-module boundary death tests -------------------------------------

TEST(ModuleContractsDeathTest, UtilUnitsRejectNanDbm) {
  EXPECT_DEATH(util::dbm_to_watts(kNan), kDies);
  EXPECT_DEATH(util::thermal_noise_watts(kNan), kDies);
}

TEST(ModuleContractsDeathTest, UtilRngRejectsInvertedBounds) {
  util::Rng rng(1);
  EXPECT_DEATH(rng.uniform_int(5, 2), kDies);
  EXPECT_DEATH(rng.uniform(2.0, 1.0), kDies);
  EXPECT_DEATH(rng.bernoulli(kNan), kDies);
}

TEST(ModuleContractsDeathTest, PhyBerRejectsNanSnr) {
  EXPECT_DEATH(phy::bit_error_rate(phy::BerModel::CoherentBpsk, kNan), kDies);
  EXPECT_DEATH(phy::packet_error_rate(kNan, 100), kDies);
}

TEST(ModuleContractsDeathTest, RfPathlossRejectsNanDistance) {
  EXPECT_DEATH(rf::friis_gain(kNan, 915e6), kDies);
  EXPECT_DEATH(rf::friis_pathloss_db(kNan, 915e6), kDies);
}

TEST(ModuleContractsDeathTest, EnergyBatteryRejectsNanDrain) {
  energy::Battery battery(util::WattHours(1.0));
  EXPECT_DEATH(battery.drain(util::Joules(kNan)), kDies);
}

TEST(ModuleContractsDeathTest, MacArqRejectsAbsurdConfig) {
  mac::ArqSender sender(1, 2);
  std::vector<std::uint8_t> oversized(mac::kMaxPayloadBytes + 1, 0xAB);
  EXPECT_DEATH(sender.submit(std::move(oversized)), kDies);
  EXPECT_DEATH(mac::ArqSender(1, 2, mac::ArqConfig{1u << 21}), kDies);
}

// NaN timestep is caught by the documented `!(dt > 0)` throw; the contract
// adds the +inf case, which passes `> 0` but is physically meaningless.
TEST(ModuleContractsDeathTest, CircuitsTransientRejectsInfiniteTimestep) {
  circuits::Netlist netlist;
  const circuits::NodeId node = netlist.add_node("n1");
  netlist.add_resistor(0, node, 1e3);
  circuits::TransientOptions options;
  options.timestep_s = kInf;
  EXPECT_DEATH(circuits::TransientSimulator(netlist, options), kDies);
  options.timestep_s = 1e-9;
  options.abs_tolerance = kNan;
  EXPECT_DEATH(circuits::TransientSimulator(netlist, options), kDies);
}

// Same split in the planner: NaN energies hit the documented throw, +inf
// sails past `> 0` and must trip the finiteness contract.
TEST(ModuleContractsDeathTest, CoreOffloadRejectsInfiniteEnergy) {
  std::vector<core::ModeCandidate> candidates(1);
  candidates[0].tx_power_w = 0.1;
  candidates[0].rx_power_w = 0.1;
  EXPECT_DEATH(core::OffloadPlanner::plan(candidates, kInf, 1.0), kDies);
  EXPECT_DEATH(core::OffloadPlanner::plan(candidates, 1.0, kInf), kDies);
}

#endif  // BRAIDIO_CONTRACTS_ENABLED

// --- good inputs must pass through untouched (both build flavors) --------

TEST(ContractCheckers, GoodValuesPassThrough) {
  EXPECT_EQ(util::contract::check_probability(0.0, "p"), 0.0);
  EXPECT_EQ(util::contract::check_probability(1.0, "p"), 1.0);
  EXPECT_EQ(util::contract::check_nonneg_energy_j(0.0, "e"), 0.0);
  EXPECT_EQ(util::contract::check_nonneg_energy_j(3.5, "e"), 3.5);
  EXPECT_EQ(util::contract::check_power_dbm_range(-30.0, "tx"), -30.0);
  EXPECT_EQ(util::contract::check_finite(-1e300, "x"), -1e300);
}

TEST(ContractCheckers, MacrosAreSilentWhenSatisfied) {
  BRAIDIO_REQUIRE(1 + 1 == 2);
  BRAIDIO_ENSURE(true, "value", 42);
  BRAIDIO_INVARIANT(2 < 3, "lo", 2, "hi", 3);
  SUCCEED();
}

// Documented recoverable errors must still throw — contracts only cover
// conditions the existing checks could not see (NaN slips past `< 0`).
TEST(ContractCheckers, DocumentedExceptionsStillThrow) {
  EXPECT_THROW(energy::Battery(util::WattHours(-1.0)),
               std::invalid_argument);
  EXPECT_THROW(phy::bit_error_rate(phy::BerModel::CoherentBpsk, -1.0),
               std::domain_error);
  energy::Battery battery(util::WattHours(1.0));
  EXPECT_THROW(battery.drain(util::Joules(-0.5)), std::invalid_argument);
}

}  // namespace
}  // namespace braidio
