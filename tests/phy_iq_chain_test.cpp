#include "phy/iq_chain.hpp"

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "phy/modulation.hpp"

namespace braidio::phy {
namespace {

TEST(IqChain, NoiselessBpskRoundTrip) {
  IqChain chain;
  const auto bits = random_bits(500, 1);
  const auto rx = chain.demodulate(chain.modulate(bits));
  EXPECT_EQ(rx, bits);
}

TEST(IqChain, NoiselessBfskRoundTrip) {
  IqChainConfig cfg;
  cfg.modulation = IqChainConfig::Modulation::Bfsk;
  IqChain chain(cfg);
  const auto bits = random_bits(500, 2);
  EXPECT_EQ(chain.demodulate(chain.modulate(bits)), bits);
}

TEST(IqChain, BpskMatchesAnalyticQ) {
  IqChain chain;
  for (double db : {4.0, 6.0, 8.0}) {
    const double snr = std::pow(10.0, db / 10.0);
    const auto r = chain.simulate(snr, 200'000, 3);
    ASSERT_GT(r.analytic_ber, 1e-4) << db;
    EXPECT_NEAR(r.measured_ber / r.analytic_ber, 1.0, 0.3) << db;
  }
}

TEST(IqChain, BfskMatchesNoncoherentExponential) {
  IqChainConfig cfg;
  cfg.modulation = IqChainConfig::Modulation::Bfsk;
  IqChain chain(cfg);
  for (double db : {6.0, 8.0, 10.0}) {
    const double snr = std::pow(10.0, db / 10.0);
    const auto r = chain.simulate(snr, 200'000, 5);
    ASSERT_GT(r.analytic_ber, 1e-4) << db;
    EXPECT_NEAR(r.measured_ber / r.analytic_ber, 1.0, 0.3) << db;
  }
}

TEST(IqChain, PhaseOffsetIsEstimatedAndRemoved) {
  // The whole point of a coherent receiver: an arbitrary channel phase
  // must not cost BER once the pilot estimator locks.
  for (double phase : {0.4, 1.2, 2.5, -1.8}) {
    IqChainConfig cfg;
    cfg.channel_phase_rad = phase;
    IqChain chain(cfg);
    // ~6 dB: analytic BER ~2.3e-3, so 100k bits give ~230 errors —
    // enough statistics for a tight ratio check.
    const auto r = chain.simulate(std::pow(10.0, 0.6), 100'000, 7);
    // Estimated phase matches the channel (mod 2 pi).
    const double diff =
        std::remainder(r.estimated_phase_rad - phase, 2.0 * std::numbers::pi);
    EXPECT_LT(std::fabs(diff), 0.1) << phase;
    EXPECT_NEAR(r.measured_ber / r.analytic_ber, 1.0, 0.3) << phase;
  }
}

TEST(IqChain, BfskIgnoresPhaseEntirely) {
  IqChainConfig cfg;
  cfg.modulation = IqChainConfig::Modulation::Bfsk;
  cfg.channel_phase_rad = 2.0;
  IqChain chain(cfg);
  const auto r = chain.simulate(std::pow(10.0, 1.0), 50'000, 9);
  EXPECT_NEAR(r.measured_ber / r.analytic_ber, 1.0, 0.35);
}

TEST(IqChain, ResidualCfoDegradesBpsk) {
  IqChainConfig clean;
  IqChainConfig drifting;
  drifting.cfo_cycles_per_symbol = 2e-3;  // phase drifts ~2.3 rad over run
  const auto r_clean = IqChain(clean).simulate(std::pow(10.0, 0.8),
                                               30'000, 11);
  const auto r_cfo = IqChain(drifting).simulate(std::pow(10.0, 0.8),
                                                30'000, 11);
  EXPECT_GT(r_cfo.measured_ber, 3.0 * std::max(r_clean.measured_ber, 1e-4));
}

TEST(IqChain, CoherentBeatsEnvelopeAtEqualSnr) {
  // Table 3's sensitivity tradeoff, quantified: at the same per-bit SNR
  // the coherent BPSK chain outperforms the non-coherent chain by orders
  // of magnitude in BER.
  IqChainConfig fsk_cfg;
  fsk_cfg.modulation = IqChainConfig::Modulation::Bfsk;
  const double snr = std::pow(10.0, 1.0);  // 10 dB
  const auto coherent = IqChain().simulate(snr, 200'000, 13);
  const auto noncoherent = IqChain(fsk_cfg).simulate(snr, 200'000, 13);
  EXPECT_LT(coherent.measured_ber * 10.0, noncoherent.measured_ber + 1e-5);
}

TEST(IqChain, Validation) {
  IqChainConfig bad;
  bad.samples_per_symbol = 1;
  EXPECT_THROW(IqChain{bad}, std::invalid_argument);
  IqChainConfig same_tones;
  same_tones.modulation = IqChainConfig::Modulation::Bfsk;
  same_tones.fsk_cycles_low = same_tones.fsk_cycles_high = 1;
  EXPECT_THROW(IqChain{same_tones}, std::invalid_argument);
  IqChain chain;
  EXPECT_THROW(chain.simulate(1.0, 0, 1), std::invalid_argument);
  EXPECT_THROW(chain.simulate(-1.0, 10, 1), std::invalid_argument);
}

class IqSnrSweep : public ::testing::TestWithParam<double> {};

TEST_P(IqSnrSweep, BerMonotone) {
  IqChain chain;
  const double snr = GetParam();
  const auto low = chain.simulate(snr, 50'000, 17);
  const auto high = chain.simulate(snr * 2.0, 50'000, 17);
  EXPECT_LE(high.measured_ber, low.measured_ber + 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Sweep, IqSnrSweep,
                         ::testing::Values(1.0, 2.0, 4.0, 8.0));

}  // namespace
}  // namespace braidio::phy
