#include "rf/phase_field.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "rf/constants.hpp"
#include "util/units.hpp"

namespace braidio::rf {
namespace {

PhaseField make_field() { return PhaseField{}; }

TEST(PhaseField, PropagationAmplitudeAndPhase) {
  const auto field = make_field();
  const double lambda = util::wavelength_m(915e6);
  const Vec2 from{0.0, 0.0};
  const Vec2 to{1.0, 0.0};
  const auto h = field.propagate(from, to);
  EXPECT_NEAR(std::abs(h), lambda / (4.0 * std::numbers::pi), 1e-12);
  // Phase advances with distance: half a wavelength flips the sign.
  const auto h2 = field.propagate(from, {1.0 + lambda / 2.0, 0.0});
  const double phase_diff =
      std::arg(h2) - std::arg(h);
  EXPECT_NEAR(std::cos(phase_diff), -1.0, 1e-6);
}

TEST(PhaseField, EnvelopeAmplitudeSmallForOrthogonalGeometry) {
  const auto field = make_field();
  // Scan tags along a line and verify the envelope amplitude collapses
  // exactly where the cancellation angle crosses pi/2.
  double worst_amp = 1e300;
  double angle_at_worst = 0.0;
  for (double x = 0.2; x <= 1.8; x += 0.001) {
    const Vec2 tag{x, 1.0};
    const double a =
        field.envelope_amplitude(tag, field.config().receive_antenna);
    if (a < worst_amp) {
      worst_amp = a;
      angle_at_worst =
          field.cancellation_angle(tag, field.config().receive_antenna);
    }
  }
  EXPECT_NEAR(angle_at_worst, std::numbers::pi / 2.0, 0.05);
}

TEST(PhaseField, EnvelopeMatchesLinearizedProjection) {
  const auto field = make_field();
  // |Vbg| >> |Vtag| here, so A ~ 2 |Vtag| cos(theta).
  const Vec2 tag{1.4, 0.8};
  const Vec2 rx = field.config().receive_antenna;
  const double a = field.envelope_amplitude(tag, rx);
  const double vt = std::abs(field.tag_vector(tag, rx));
  const double theta = field.cancellation_angle(tag, rx);
  EXPECT_NEAR(a, 2.0 * vt * std::cos(theta), 0.05 * 2.0 * vt + 1e-12);
}

TEST(PhaseField, SnrFallsWithDistanceOnAverage) {
  const auto field = make_field();
  // Compare median SNR in a near band vs a far band (medians are robust to
  // the interference nulls).
  auto median_snr = [&](double x_lo, double x_hi) {
    std::vector<double> v;
    for (double x = x_lo; x < x_hi; x += 0.01) {
      v.push_back(field.snr_db({x, 0.5}, field.config().receive_antenna));
    }
    std::nth_element(v.begin(), v.begin() + static_cast<long>(v.size() / 2),
                     v.end());
    return v[v.size() / 2];
  };
  EXPECT_GT(median_snr(1.3, 1.6), median_snr(2.6, 2.9) + 6.0);
}

TEST(PhaseField, DiversityNeverWorseThanSingleAntenna) {
  const auto field = make_field();
  const double lambda = util::wavelength_m(915e6);
  const auto pair =
      make_diversity_pair(field.config().receive_antenna, lambda / 8.0);
  for (double x = 0.3; x <= 2.0; x += 0.05) {
    const Vec2 tag{x, 0.5};
    // Selection combining picks the better antenna, which can only help
    // relative to the worse of the two.
    const double best = field.snr_db_diversity(tag, pair);
    EXPECT_GE(best + 1e-9, field.snr_db(tag, pair[0].position));
    EXPECT_GE(best + 1e-9, field.snr_db(tag, pair[1].position));
  }
  EXPECT_THROW(field.snr_db_diversity({1, 1}, {}), std::invalid_argument);
}

TEST(PhaseField, Figure6DiversityRescuesNulls) {
  // The paper's microbenchmark: the tag moves 0.5 m - 2 m away from the
  // device (i.e. beyond the antenna pair); without diversity the SNR at
  // null points collapses, with two antennas lambda/8 apart the nulls stay
  // above ~5 dB while typical SNR is ~30 dB.
  const auto field = make_field();
  const double lambda = util::wavelength_m(915e6);
  const double rx_x = field.config().receive_antenna.x;
  const auto line =
      field.sample_line(rx_x + 0.5, rx_x + 2.0, 0.5, 400, lambda / 8.0);
  double min_single = 1e300, min_div = 1e300, max_single = -1e300;
  for (const auto& s : line) {
    min_single = std::min(min_single, s.snr_single_db);
    min_div = std::min(min_div, s.snr_diversity_db);
    max_single = std::max(max_single, s.snr_single_db);
  }
  EXPECT_LT(min_single, 8.0);       // deep nulls exist without diversity
  EXPECT_GT(min_div, min_single);   // diversity lifts them
  EXPECT_GT(min_div, 5.0);          // paper: "still higher than 5dB"
  EXPECT_GT(max_single, 25.0);      // typical SNR ~30 dB
}

TEST(PhaseField, GridSamplingShapeAndDarkSpots) {
  const auto field = make_field();
  const auto grid = field.sample_grid(0.0, 2.0, 0.0, 2.0, 40, 40);
  ASSERT_EQ(grid.size(), 1600u);
  // Fig. 4(b): dark (weak) regions exist even close to the radios.
  double lo = 1e300, hi = -1e300;
  for (const auto& s : grid) {
    const double d_tx = distance(s.position, field.config().carrier_antenna);
    if (d_tx < 1.0) {
      lo = std::min(lo, s.level_db);
      hi = std::max(hi, s.level_db);
    }
  }
  EXPECT_GT(hi - lo, 25.0);  // strong contrast near the devices
  EXPECT_THROW(field.sample_grid(0, 1, 0, 1, 1, 5), std::invalid_argument);
}

TEST(PhaseField, CancellationAngleSymmetricStates) {
  // Antisymmetric modulation means theta is folded into [0, pi/2].
  const auto field = make_field();
  for (double x : {0.4, 0.9, 1.3, 1.9}) {
    const double theta =
        field.cancellation_angle({x, 0.7}, field.config().receive_antenna);
    EXPECT_GE(theta, 0.0);
    EXPECT_LE(theta, std::numbers::pi / 2.0 + 1e-12);
  }
}

TEST(PhaseField, ConfigValidation) {
  PhaseFieldConfig bad;
  bad.freq_hz = 0.0;
  EXPECT_THROW(PhaseField{bad}, std::invalid_argument);
  PhaseFieldConfig bad2;
  bad2.noise_amplitude = 0.0;
  EXPECT_THROW(PhaseField{bad2}, std::invalid_argument);
}

}  // namespace
}  // namespace braidio::rf
