#include "rf/pathloss.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "rf/constants.hpp"
#include "util/units.hpp"

namespace braidio::rf {
namespace {

TEST(Friis, MatchesClosedFormAt915MHz) {
  // FSPL(dB) = 20 log10(d) + 20 log10(f) - 147.55.
  const double d = 2.0;
  const double expected_db = 20.0 * std::log10(d) +
                             20.0 * std::log10(kCarrierFrequencyHz) - 147.55;
  EXPECT_NEAR(friis_pathloss_db(d, kCarrierFrequencyHz), expected_db, 0.01);
}

TEST(Friis, InverseSquareScaling) {
  const double g1 = friis_gain(1.0, kCarrierFrequencyHz);
  const double g2 = friis_gain(2.0, kCarrierFrequencyHz);
  const double g4 = friis_gain(4.0, kCarrierFrequencyHz);
  EXPECT_NEAR(g1 / g2, 4.0, 1e-9);
  EXPECT_NEAR(g2 / g4, 4.0, 1e-9);
}

TEST(Friis, AntennaGainsMultiply) {
  const double base = friis_gain(3.0, kCarrierFrequencyHz);
  const double with_gain = friis_gain(3.0, kCarrierFrequencyHz, 3.0, 3.0);
  EXPECT_NEAR(with_gain / base, util::db_to_linear(6.0), 1e-9);
}

TEST(Friis, NearFieldClampAndCeiling) {
  // Below the clamp the gain must stop growing.
  EXPECT_DOUBLE_EQ(friis_gain(0.0, kCarrierFrequencyHz),
                   friis_gain(0.05, kCarrierFrequencyHz));
  // Passive link can never deliver more power than transmitted.
  EXPECT_LE(friis_gain(0.001, kCarrierFrequencyHz, 30.0, 30.0), 1.0);
}

TEST(Friis, RejectsBadArguments) {
  EXPECT_THROW(friis_gain(-1.0, kCarrierFrequencyHz), std::domain_error);
  EXPECT_THROW(friis_gain(1.0, 0.0), std::domain_error);
}

TEST(Backscatter, FourthPowerScaling) {
  const double g1 = backscatter_gain(1.0, kCarrierFrequencyHz);
  const double g2 = backscatter_gain(2.0, kCarrierFrequencyHz);
  EXPECT_NEAR(g1 / g2, 16.0, 1e-9);
}

TEST(Backscatter, AlwaysBelowOneWayLoss) {
  for (double d : {0.3, 0.9, 1.8, 2.4}) {
    EXPECT_LT(backscatter_gain(d, kCarrierFrequencyHz),
              friis_gain(d, kCarrierFrequencyHz))
        << "at d=" << d;
  }
}

TEST(Backscatter, ModulationLossApplies) {
  const double lossless =
      backscatter_gain(1.0, kCarrierFrequencyHz, 0.0, 0.0, 0.0);
  const double lossy =
      backscatter_gain(1.0, kCarrierFrequencyHz, 0.0, 0.0, 6.0);
  EXPECT_NEAR(lossless / lossy, util::db_to_linear(6.0), 1e-9);
}

TEST(Backscatter, IsRoundTripOfFriis) {
  // With equal antenna gains and no modulation loss, the radar gain equals
  // the square of the one-way gain.
  const double d = 1.7;
  const double one_way = friis_gain(d, kCarrierFrequencyHz);
  const double round_trip =
      backscatter_gain(d, kCarrierFrequencyHz, 0.0, 0.0, 0.0);
  EXPECT_NEAR(round_trip, one_way * one_way, 1e-12);
}

TEST(LogDistance, ReducesToFriisWithExponentTwo) {
  for (double d : {1.5, 3.0, 6.0}) {
    EXPECT_NEAR(log_distance_gain(d, kCarrierFrequencyHz, 2.0),
                friis_gain(d, kCarrierFrequencyHz), 1e-12)
        << "at d=" << d;
  }
}

TEST(LogDistance, SteeperExponentDecaysFaster) {
  const double g2 = log_distance_gain(4.0, kCarrierFrequencyHz, 2.0);
  const double g3 = log_distance_gain(4.0, kCarrierFrequencyHz, 3.0);
  EXPECT_GT(g2, g3);
  // Inside the reference distance both follow Friis.
  EXPECT_DOUBLE_EQ(log_distance_gain(0.5, kCarrierFrequencyHz, 3.5),
                   friis_gain(0.5, kCarrierFrequencyHz));
  EXPECT_THROW(log_distance_gain(1.0, kCarrierFrequencyHz, 0.0),
               std::domain_error);
}

class PathlossMonotonic : public ::testing::TestWithParam<double> {};

TEST_P(PathlossMonotonic, GainDecreasesWithDistance) {
  const double d = GetParam();
  EXPECT_GT(friis_gain(d, kCarrierFrequencyHz),
            friis_gain(d * 1.5, kCarrierFrequencyHz));
  EXPECT_GT(backscatter_gain(d, kCarrierFrequencyHz),
            backscatter_gain(d * 1.5, kCarrierFrequencyHz));
}

INSTANTIATE_TEST_SUITE_P(Sweep, PathlossMonotonic,
                         ::testing::Values(0.1, 0.3, 0.9, 1.8, 2.4, 3.9, 5.1,
                                           6.0, 10.0));

}  // namespace
}  // namespace braidio::rf
