#include "core/regimes.hpp"

#include <gtest/gtest.h>

namespace braidio::core {
namespace {

class RegimesTest : public ::testing::Test {
 protected:
  PowerTable table_;
  phy::LinkBudget budget_;
  RegimeMap map_{table_, budget_};
};

TEST_F(RegimesTest, RegimeBoundariesMatchFig8Narrative) {
  // Regime A while backscatter works (<= 2.4 m), B until passive dies
  // (<= 5.1 m), C beyond.
  EXPECT_EQ(map_.regime(0.3), Regime::A);
  EXPECT_EQ(map_.regime(2.3), Regime::A);
  EXPECT_EQ(map_.regime(2.6), Regime::B);
  EXPECT_EQ(map_.regime(5.0), Regime::B);
  EXPECT_EQ(map_.regime(5.5), Regime::C);
  EXPECT_NEAR(map_.regime_a_limit_m(), 2.4, 0.01);
  EXPECT_NEAR(map_.regime_b_limit_m(), 5.1, 0.01);
}

TEST_F(RegimesTest, AvailableShrinksWithDistance) {
  std::size_t prev = 10;
  for (double d : {0.3, 1.0, 2.0, 3.0, 4.4, 5.5}) {
    const auto avail = map_.available(d);
    EXPECT_LE(avail.size(), prev) << "d=" << d;
    prev = avail.size();
  }
  // Close range: everything; far: only active.
  EXPECT_EQ(map_.available(0.3).size(), 9u);
  const auto far = map_.available(5.5);
  ASSERT_EQ(far.size(), 3u);
  for (const auto& c : far) {
    EXPECT_EQ(c.mode, phy::LinkMode::Active);
  }
}

TEST_F(RegimesTest, BestRateRespectsFig13Steps) {
  // At 0.3 m every mode runs 1 Mbps; at 1.2 m backscatter has dropped to
  // 100 kbps while passive still runs 1 Mbps.
  const auto close = map_.available_best_rate(0.3);
  ASSERT_EQ(close.size(), 3u);
  for (const auto& c : close) {
    EXPECT_EQ(c.rate, phy::Bitrate::M1) << c.label();
  }
  const auto mid = map_.available_best_rate(1.2);
  ASSERT_EQ(mid.size(), 3u);
  for (const auto& c : mid) {
    if (c.mode == phy::LinkMode::Backscatter) {
      EXPECT_EQ(c.rate, phy::Bitrate::k100);
    } else {
      EXPECT_EQ(c.rate, phy::Bitrate::M1);
    }
  }
}

TEST_F(RegimesTest, RegimeBCandidatesHaveNoBackscatter) {
  for (const auto& c : map_.available(3.0)) {
    EXPECT_NE(c.mode, phy::LinkMode::Backscatter) << c.label();
  }
  const auto best = map_.available_best_rate(3.0);
  EXPECT_EQ(best.size(), 2u);  // active + passive
}

TEST_F(RegimesTest, CandidatesCarryPowerTableEntries) {
  for (const auto& c : map_.available_best_rate(0.3)) {
    const auto& reference = table_.candidate(c.mode, c.rate);
    EXPECT_EQ(c, reference);
  }
}

TEST_F(RegimesTest, RegimeNames) {
  EXPECT_STREQ(to_string(Regime::A), "A");
  EXPECT_STREQ(to_string(Regime::B), "B");
  EXPECT_STREQ(to_string(Regime::C), "C");
}

}  // namespace
}  // namespace braidio::core
