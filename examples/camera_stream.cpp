// Camera streaming: the Pivothead scenario from Sec. 6.3.
//
// A camera-glasses device streams 30 fps video to a laptop. The paper
// reports Braidio improves lifetime ~35x for this pair. We compute the
// sustainable streaming time on the camera's battery for Bluetooth, each
// single Braidio mode, and the braided plan — and show what happens as the
// wearer walks away from the laptop.
#include <iostream>

#include "core/lifetime_sim.hpp"
#include "energy/device_catalog.hpp"
#include "obs/obs.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace braidio;

  core::PowerTable table;
  phy::LinkBudget budget;
  core::LifetimeSimulator sim(table, budget);
  core::RegimeMap regimes(table, budget);

  const auto camera = *energy::find_device("Pivothead");
  const auto laptop = *energy::find_device("MacBook Pro 15");
  const auto e_cam = util::to_joules(util::WattHours(camera.battery_wh));
  const auto e_lap = util::to_joules(util::WattHours(laptop.battery_wh));

  std::cout << "Pivothead (" << camera.battery_wh << " Wh) streaming to "
            << laptop.name << " (" << laptop.battery_wh << " Wh)\n\n";

  // Radio-subsystem streaming lifetime at 0.5 m, 1 Mbps effective.
  core::LifetimeConfig cfg;
  cfg.distance_m = 0.5;
  util::TablePrinter out({"radio configuration", "total bits",
                          "hours @1 Mbps", "vs Bluetooth"});
  const double bt = sim.bluetooth_bits(e_cam, e_lap, false);
  auto row = [&](const std::string& name, double bits) {
    out.add_row({name, util::format_scientific(bits, 3),
                 util::format_fixed(bits / 1e6 / 3600.0, 1),
                 util::format_fixed(bits / bt, 2) + "x"});
  };
  row("Bluetooth", bt);
  for (const auto& c : regimes.available_best_rate(cfg.distance_m)) {
    row("Braidio, " + c.label() + " only",
        sim.single_mode_bits(c, e_cam, e_lap, false));
  }
  const auto braid = sim.braidio(e_cam, e_lap, cfg);
  row("Braidio, braided (" + braid.plan.summary() + ")", braid.bits);
  out.print(std::cout);

  // Walking away: sustainable gain vs distance.
  std::cout << "\nWalking away from the laptop:\n";
  util::TablePrinter walk({"distance [m]", "regime", "gain vs Bluetooth",
                           "camera nJ/bit"});
  for (double d : {0.3, 0.9, 1.5, 2.1, 2.7, 3.6, 4.5, 5.4}) {
    core::LifetimeConfig at;
    at.distance_m = d;
    const auto outcome = sim.braidio(e_cam, e_lap, at);
    walk.add_row({util::format_fixed(d, 1),
                  to_string(regimes.regime(d)),
                  util::format_fixed(
                      sim.gain_vs_bluetooth(camera, laptop, at), 2) + "x",
                  util::format_fixed(
                      outcome.plan.tx_joules_per_bit * 1e9, 2)});
  }
  walk.print(std::cout);
  std::cout << "\nThe camera rides the backscatter tag while in Regime A; "
               "once the wearer passes ~2.4 m the gain falls to the "
               "active/passive braid, and past ~5.1 m Braidio degenerates "
               "to Bluetooth.\n";

  const auto metrics = obs::global_metrics_snapshot();
  if (!metrics.empty()) {
    std::cout << "\nobs metrics for this run:\n";
    metrics.to_table().print(std::cout);
  }
  return 0;
}
