// Asymmetric IoT hub: several coin-cell sensors report to one mains-class
// hub. Exercises the protocol stack under link dynamics: per-sensor
// distances, block fading, and an injected shadowing event that forces the
// Sec. 4.2 fallback to the active mode.
//
// Ported onto the sim engine: one Scenario axis = sensor, each sensor's
// 800-slot link simulation evaluated independently (and concurrently with
// `--threads N`); results land in deterministic sensor order.
#include <iostream>
#include <string>
#include <vector>

#include "core/braided_link.hpp"
#include "core/braidio_radio.hpp"
#include "sim/run_report.hpp"
#include "sim/scenario.hpp"
#include "sim/sweep_runner.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace braidio;
  sim::RunReport report(std::cout, "Example",
                        "Asymmetric IoT: coin-cell sensors -> mains hub");

  core::PowerTable table;
  phy::LinkBudget budget;
  core::RegimeMap regimes(table, budget);

  struct Sensor {
    std::string name;
    double battery_wh;
    double distance_m;
    bool shadowed;  // inject 12 dB of loss (someone stood in the way)
  };
  const std::vector<Sensor> sensors = {
      {"door-sensor", 0.7, 0.6, false},
      {"window-sensor", 0.7, 1.4, false},
      {"motion-sensor", 0.7, 2.1, false},
      {"garage-sensor", 0.7, 1.0, true},
  };

  std::vector<std::string> names;
  for (const auto& s : sensors) names.push_back(s.name);

  sim::Scenario scenario(
      "asymmetric_iot", {{"sensor", names}},
      {"d [m]", "regime", "delivered", "fallbacks", "sensor J",
       "plan executed"},
      [&](sim::SweepPoint& p) {
        const auto& s = sensors[p.axis_index(0)];
        // Each point builds its own radios: BraidedLink mutates both ends,
        // so no state is shared between concurrent evaluations.
        core::BraidioRadio node(s.name, 1, util::WattHours(s.battery_wh),
                                table);
        core::BraidioRadio hub("hub", 2, util::WattHours(99.5), table);
        const double e0 = node.battery().remaining_joules();

        core::BraidedLinkConfig cfg;
        cfg.distance_m = s.distance_m;
        cfg.payload_bytes = 24;  // sensor report
        cfg.packets_per_slot = 8;
        cfg.block_fading = true;
        cfg.extra_loss_db = s.shadowed ? 12.0 : 0.0;
        cfg.seed = p.seed();

        core::BraidedLink link(node, hub, regimes, cfg);
        const auto stats = link.run(800);

        sim::RunRecord record;
        record.cells = {
            util::format_fixed(s.distance_m, 1),
            to_string(regimes.regime(s.distance_m)),
            std::to_string(stats.data_packets_delivered) + "/" +
                std::to_string(stats.data_packets_offered),
            std::to_string(stats.fallbacks),
            util::format_scientific(
                e0 - node.battery().remaining_joules(), 3),
            stats.last_plan};
        return record;
      });

  sim::SweepOptions options;
  options.threads = sim::threads_from_cli(argc, argv);
  const auto out = sim::SweepRunner(options).run(scenario);
  report.table(out);
  report.metrics(out);
  report.export_csv("asymmetric_iot", out);

  report.note("All sensors are backscatter-dominant (the hub holds the "
              "carrier); the shadowed garage link repeatedly falls back to "
              "the active mode and replans, trading energy for "
              "reliability exactly as Sec. 4.2 prescribes.");
  return 0;
}
