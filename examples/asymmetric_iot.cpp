// Asymmetric IoT hub: several coin-cell sensors report to one mains-class
// hub. Exercises the protocol stack under link dynamics: per-sensor
// distances, block fading, and an injected shadowing event that forces the
// Sec. 4.2 fallback to the active mode.
#include <iostream>
#include <vector>

#include "core/braided_link.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace braidio;

  core::PowerTable table;
  phy::LinkBudget budget;
  core::RegimeMap regimes(table, budget);

  struct Sensor {
    std::string name;
    double battery_wh;
    double distance_m;
    bool shadowed;  // inject 12 dB of loss (someone stood in the way)
  };
  const std::vector<Sensor> sensors = {
      {"door-sensor", 0.7, 0.6, false},
      {"window-sensor", 0.7, 1.4, false},
      {"motion-sensor", 0.7, 2.1, false},
      {"garage-sensor", 0.7, 1.0, true},
  };
  // The hub is powered but we still track its draw.
  util::TablePrinter out({"sensor", "d [m]", "regime", "delivered",
                          "fallbacks", "sensor J", "plan executed"});

  for (const auto& s : sensors) {
    core::BraidioRadio node(s.name, 1, s.battery_wh, table);
    core::BraidioRadio hub("hub", 2, 99.5, table);
    const double e0 = node.battery().remaining_joules();

    core::BraidedLinkConfig cfg;
    cfg.distance_m = s.distance_m;
    cfg.payload_bytes = 24;  // sensor report
    cfg.packets_per_slot = 8;
    cfg.block_fading = true;
    cfg.extra_loss_db = s.shadowed ? 12.0 : 0.0;
    cfg.seed = std::hash<std::string>{}(s.name);

    core::BraidedLink link(node, hub, regimes, cfg);
    const auto stats = link.run(800);

    out.add_row({s.name, util::format_fixed(s.distance_m, 1),
                 to_string(regimes.regime(s.distance_m)),
                 std::to_string(stats.data_packets_delivered) + "/" +
                     std::to_string(stats.data_packets_offered),
                 std::to_string(stats.fallbacks),
                 util::format_scientific(e0 -
                                             node.battery()
                                                 .remaining_joules(),
                                         3),
                 stats.last_plan});
  }
  out.print(std::cout);

  std::cout << "\nAll sensors are backscatter-dominant (the hub holds the "
               "carrier); the shadowed garage link repeatedly falls back to "
               "the active mode and replans, trading energy for "
               "reliability exactly as Sec. 4.2 prescribes.\n";
  return 0;
}
