// Wearable sync: the workload that motivates the paper's introduction.
//
// A fitness band accumulates sensor data all day and syncs it to a phone
// every hour. The band's 0.26 Wh battery has to last as long as possible;
// the phone has 25x the energy. We compare the band's radio budget per day
// under Bluetooth vs Braidio and show the resulting battery-life extension
// for the radio subsystem.
#include <iostream>

#include "core/braided_link.hpp"
#include "core/braidio_radio.hpp"
#include "core/lifetime_sim.hpp"
#include "energy/device_catalog.hpp"
#include "obs/obs.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace braidio;

  constexpr double kSyncMB = 2.0;           // per-hour sensor batch
  constexpr double kSyncsPerDay = 24.0;
  const double bits_per_day = kSyncMB * 8e6 * kSyncsPerDay;

  core::PowerTable table;
  phy::LinkBudget budget;
  core::LifetimeSimulator sim(table, budget);

  const auto band = *energy::find_device("Nike Fuel Band");
  const auto phone = *energy::find_device("iPhone 6S");
  const auto e_band = util::to_joules(util::WattHours(band.battery_wh));
  const auto e_phone = util::to_joules(util::WattHours(phone.battery_wh));

  core::LifetimeConfig cfg;
  cfg.distance_m = 0.4;  // wrist to pocket
  const auto plan = sim.braidio(e_band, e_phone, cfg).plan;

  // Per-day radio energy on the band under each technology.
  const double braidio_j = plan.tx_joules_per_bit * bits_per_day;
  const double bt_j =
      sim.bluetooth_model().tx_energy_per_bit() * bits_per_day;

  util::TablePrinter out({"radio", "band energy/day", "% of 0.26 Wh battery",
                          "days of radio budget"});
  auto row = [&](const std::string& name, double joules) {
    out.add_row({name, util::format_fixed(joules, 3) + " J",
                 util::format_fixed(100.0 * joules / e_band.value(), 2) + " %",
                 util::format_fixed(e_band.value() / joules, 0)});
  };
  row("Bluetooth", bt_j);
  row("Braidio", braidio_j);
  out.print(std::cout);

  std::cout << "\nplan while syncing: " << plan.summary() << '\n';
  std::cout << "radio-lifetime extension for the band: "
            << util::format_fixed(bt_j / braidio_j, 1) << "x\n\n";

  // Run one sync session through the packetized protocol to confirm the
  // plan is achievable with real framing/ARQ.
  core::RegimeMap regimes(table, budget);
  core::BraidioRadio a("band", 1, util::WattHours(band.battery_wh),
                       table);
  core::BraidioRadio b("phone", 2, util::WattHours(phone.battery_wh),
                       table);
  core::BraidedLinkConfig link_cfg;
  link_cfg.distance_m = cfg.distance_m;
  link_cfg.payload_bytes = 256;
  core::BraidedLink link(a, b, regimes, link_cfg);
  const auto stats = link.run(1000);  // 256 kB batch
  std::cout << "one sync batch: " << stats.payload_bits_delivered / 8e3
            << " kB delivered, band spent "
            << util::wh_to_joules(band.battery_wh) -
                   a.battery().remaining_joules()
            << " J, phone "
            << util::wh_to_joules(phone.battery_wh) -
                   b.battery().remaining_joules()
            << " J\n";
  std::cout << "executed plan: " << stats.last_plan << '\n';

  const auto metrics = obs::global_metrics_snapshot();
  if (!metrics.empty()) {
    std::cout << "\nobs metrics for this run:\n";
    metrics.to_table().print(std::cout);
  }
  return 0;
}
