// braidio_cli: command-line front end to the library.
//
//   braidio_cli plan <e1_wh> <e2_wh> <distance_m> [--bidirectional]
//   braidio_cli braid <e1_wh> <e2_wh> <distance_m> [packets]
//                     [--bidirectional]
//   braidio_cli profile <e1_wh> <e2_wh> <distance_m> [packets]
//                     [--bidirectional] [--flame-out=<file>]
//   braidio_cli lifetime <tx-device> <rx-device> [distance_m]
//   braidio_cli matrix [distance_m]
//   braidio_cli ber <active|passive|backscatter> <10k|100k|1M>
//   braidio_cli net [--topology=<star|grid|rgg>] [--nodes=<n>]
//                   [--packets=<n>] [--extent=<m>] [--range=<m>]
//                   [--seed=<n>] [--mac=<csma|tdma>]
//   braidio_cli regimes
//   braidio_cli devices
//   braidio_cli backends
//
// Global flags (any command):
//   --trace-out=<file>   enable the obs tracer, write Chrome trace JSON
//                        (load in chrome://tracing / Perfetto) on exit
//   --trace-ring=<n>     per-lane trace ring capacity in events (default
//                        262144); requires --trace-out
//   --metrics            print the metrics registry after the command
//   --log-level=<level>  trace|debug|info|warn|error|off (default warn)
//   --faults=<file>      scripted fault timeline (sim/faults text format)
//                        injected into commands that run the event
//                        simulator (currently: braid)
//   --backend=<name>     radio backend behind the HAL (default braidio;
//                        see `braidio_cli backends` for the registry)
//
// Device names are the Fig. 1 catalog entries ("Apple Watch", "iPhone 6S",
// ...). All output is plain tables; exit code 2 flags usage errors.
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "backends/backends.hpp"
#include "core/braided_link.hpp"
#include "core/braidio_radio.hpp"
#include "core/efficiency.hpp"
#include "core/lifetime_sim.hpp"
#include "net/network_sim.hpp"
#include "obs/obs.hpp"
#include "sim/faults/fault_timeline.hpp"
#include "sim/faults/impairment.hpp"
#include "sim/run_report.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace braidio;

int usage() {
  std::cerr <<
      "usage:\n"
      "  braidio_cli plan <e1_wh> <e2_wh> <distance_m> [--bidirectional]\n"
      "  braidio_cli braid <e1_wh> <e2_wh> <distance_m> [packets]"
      " [--bidirectional]\n"
      "  braidio_cli profile <e1_wh> <e2_wh> <distance_m> [packets]"
      " [--bidirectional] [--flame-out=<file>]\n"
      "  braidio_cli lifetime <tx-device> <rx-device> [distance_m]\n"
      "  braidio_cli matrix [distance_m]\n"
      "  braidio_cli ber <active|passive|backscatter> <10k|100k|1M>\n"
      "  braidio_cli net [--topology=<star|grid|rgg>] [--nodes=<n>]"
      " [--packets=<n>]\n"
      "                  [--extent=<m>] [--range=<m>] [--seed=<n>]"
      " [--mac=<csma|tdma>]\n"
      "                  [--net-stats-out=<file>] [--stats-bucket=<s>]\n"
      "  braidio_cli regimes\n"
      "  braidio_cli devices\n"
      "  braidio_cli backends\n"
      "global flags: --trace-out=<file> --trace-ring=<n> --metrics\n"
      "              --log-level=<level> --faults=<file>\n"
      "              --backend=<name>\n";
  return 2;
}

/// Default per-lane trace ring capacity when exporting with --trace-out.
/// A file export asks for the whole run, not a tail window, so the default
/// is sized for long runs (~256k events/lane, still bounded memory); drops
/// are reported on export either way. Override with --trace-ring=<n>.
constexpr std::size_t kDefaultTraceRingEvents = std::size_t{1} << 18;

struct GlobalOptions {
  std::string trace_out;
  std::size_t trace_ring = kDefaultTraceRingEvents;
  bool trace_ring_set = false;
  bool metrics = false;
  std::optional<sim::faults::ImpairmentSchedule> faults;
  std::string backend = backends::kBraidio;
};

/// Strip the global flags out of `args`; returns false on a bad value.
bool parse_global_flags(std::vector<std::string>& args,
                        GlobalOptions& options) {
  std::vector<std::string> rest;
  for (const auto& arg : args) {
    if (arg.rfind("--trace-out=", 0) == 0) {
      options.trace_out = arg.substr(12);
      if (options.trace_out.empty()) return false;
    } else if (arg.rfind("--trace-ring=", 0) == 0) {
      const std::string value = arg.substr(13);
      char* end = nullptr;
      const unsigned long long n = std::strtoull(value.c_str(), &end, 10);
      if (value.empty() || end == nullptr || *end != '\0' || n == 0) {
        std::cerr << "bad --trace-ring value: " << value
                  << " (want a positive event count)\n";
        return false;
      }
      options.trace_ring = static_cast<std::size_t>(n);
      options.trace_ring_set = true;
    } else if (arg == "--metrics") {
      options.metrics = true;
    } else if (arg.rfind("--backend=", 0) == 0) {
      options.backend = arg.substr(10);
      if (options.backend.empty()) return false;
    } else if (arg.rfind("--faults=", 0) == 0) {
      std::string error;
      const auto timeline =
          sim::faults::FaultTimeline::parse_file(arg.substr(9), &error);
      if (!timeline) {
        std::cerr << "bad --faults file: " << error << '\n';
        return false;
      }
      options.faults.emplace(*timeline);
    } else if (arg.rfind("--log-level=", 0) == 0) {
      util::LogLevel level;
      if (!util::parse_log_level(arg.substr(12), level)) {
        std::cerr << "bad --log-level value: " << arg.substr(12) << '\n';
        return false;
      }
      util::set_log_level(level);
    } else {
      rest.push_back(arg);
    }
  }
  if (options.trace_ring_set && options.trace_out.empty()) {
    std::cerr << "--trace-ring requires --trace-out (the ring only backs "
                 "the file export)\n";
    return false;
  }
  args = std::move(rest);
  return true;
}


std::optional<phy::LinkMode> parse_mode(const std::string& s) {
  if (s == "active") return phy::LinkMode::Active;
  if (s == "passive") return phy::LinkMode::PassiveRx;
  if (s == "backscatter") return phy::LinkMode::Backscatter;
  return std::nullopt;
}

std::optional<phy::Bitrate> parse_rate(const std::string& s) {
  if (s == "10k") return phy::Bitrate::k10;
  if (s == "100k") return phy::Bitrate::k100;
  if (s == "1M") return phy::Bitrate::M1;
  return std::nullopt;
}

int cmd_plan(const hal::RadioBackend& backend,
             const std::vector<std::string>& args) {
  if (args.size() < 3) return usage();
  const double e1 = util::wh_to_joules(std::stod(args[0]));
  const double e2 = util::wh_to_joules(std::stod(args[1]));
  const double d = std::stod(args[2]);
  const bool bidir = args.size() > 3 && args[3] == "--bidirectional";

  core::RegimeMap regimes(backend);
  const auto candidates = regimes.available_best_rate(d);
  if (candidates.empty()) {
    std::cout << "no link at " << d << " m\n";
    return 1;
  }
  const auto plan = bidir
                        ? core::OffloadPlanner::plan_bidirectional(
                              candidates, e1, e2)
                        : core::OffloadPlanner::plan(candidates, e1, e2);
  std::cout << "regime " << to_string(regimes.regime(d)) << " at " << d
            << " m; plan: " << plan.summary() << '\n'
            << "  device1 " << plan.tx_joules_per_bit * 1e9
            << " nJ/bit, device2 " << plan.rx_joules_per_bit * 1e9
            << " nJ/bit\n"
            << "  bits until first battery dies: "
            << plan.bits_until_depletion(e1, e2) << '\n';
  return 0;
}

int cmd_braid(const hal::RadioBackend& backend,
              const std::vector<std::string>& args,
              const GlobalOptions& options) {
  if (args.size() < 3) return usage();
  const double e1_wh = std::stod(args[0]);
  const double e2_wh = std::stod(args[1]);
  const double d = std::stod(args[2]);
  std::uint64_t packets = 4096;
  bool bidir = false;
  for (std::size_t i = 3; i < args.size(); ++i) {
    if (args[i] == "--bidirectional") {
      bidir = true;
    } else {
      packets = std::stoull(args[i]);
    }
  }

  core::RegimeMap regimes(backend);
  const auto device1 =
      backend.create_radio("device1", 1, util::WattHours(e1_wh));
  const auto device2 =
      backend.create_radio("device2", 2, util::WattHours(e2_wh));
  core::BraidedLinkConfig cfg;
  cfg.distance_m = d;
  cfg.bidirectional = bidir;
  if (options.faults) cfg.impairments = &*options.faults;
  core::BraidedLink link(*device1, *device2, regimes, cfg);
  const auto stats = link.run(packets);

  util::TablePrinter out({"metric", "value"});
  out.add_row({"packets offered", std::to_string(stats.data_packets_offered)});
  out.add_row({"packets delivered",
               std::to_string(stats.data_packets_delivered)});
  out.add_row({"delivery ratio",
               util::format_fixed(stats.delivery_ratio(), 4)});
  out.add_row({"retransmissions", std::to_string(stats.retransmissions)});
  out.add_row({"fallbacks", std::to_string(stats.fallbacks)});
  out.add_row({"replans", std::to_string(stats.replans)});
  out.add_row({"fault activations",
               std::to_string(stats.fault_activations)});
  out.add_row({"elapsed", util::format_fixed(stats.elapsed_s, 3) + " s"});
  out.add_row({"plan", stats.last_plan});
  out.print(std::cout);
  return 0;
}

// Run the same exchange as `braid` with energy attribution enabled and
// report where every joule went: the span-attributed tree, the
// per-device ledgers, and a conservation line (tree total vs ledger
// total). With --flame-out=<file>, also writes the collapsed-stack
// flame graph (feed to flamegraph.pl / speedscope).
int cmd_profile(const hal::RadioBackend& backend,
                const std::vector<std::string>& args,
                const GlobalOptions& options) {
  if (args.size() < 3) return usage();
  const double e1_wh = std::stod(args[0]);
  const double e2_wh = std::stod(args[1]);
  const double d = std::stod(args[2]);
  std::uint64_t packets = 4096;
  bool bidir = false;
  std::string flame_out;
  for (std::size_t i = 3; i < args.size(); ++i) {
    if (args[i] == "--bidirectional") {
      bidir = true;
    } else if (args[i].rfind("--flame-out=", 0) == 0) {
      flame_out = args[i].substr(12);
      if (flame_out.empty()) return usage();
    } else {
      packets = std::stoull(args[i]);
    }
  }

  obs::reset_global_energy_profile();
  obs::set_attribution_enabled(true);

  core::RegimeMap regimes(backend);
  const auto device1 =
      backend.create_radio("device1", 1, util::WattHours(e1_wh));
  const auto device2 =
      backend.create_radio("device2", 2, util::WattHours(e2_wh));
  core::BraidedLinkConfig cfg;
  cfg.distance_m = d;
  cfg.bidirectional = bidir;
  if (options.faults) cfg.impairments = &*options.faults;
  core::BraidedLink link(*device1, *device2, regimes, cfg);
  const auto stats = link.run(packets);

  obs::set_attribution_enabled(false);
  const auto profile = obs::global_energy_profile_snapshot();

  std::cout << "delivered " << stats.data_packets_delivered << "/"
            << stats.data_packets_offered << " packets in "
            << util::format_fixed(stats.elapsed_s, 3) << " s (plan: "
            << stats.last_plan << ")\n\n";
  if (profile.empty()) {
    std::cout << "(no energy attribution recorded — observability "
                 "disabled build?)\n";
    return 0;
  }
  std::cout << "energy attribution (span tree):\n" << profile.tree_report()
            << '\n';
  std::cout << "device1 ledger:\n" << device1->ledger().report() << '\n'
            << "device2 ledger:\n" << device2->ledger().report() << '\n';

  const double ledger_total =
      device1->ledger().total_joules() + device2->ledger().total_joules();
  std::cout << "conservation: tree "
            << util::format_engineering(profile.total_joules(), 6)
            << "J vs ledgers "
            << util::format_engineering(ledger_total, 6) << "J\n";

  if (!flame_out.empty()) {
    std::ofstream f(flame_out, std::ios::binary | std::ios::trunc);
    if (f) f << profile.to_collapsed_stack();
    if (!f.good()) {
      std::cerr << "flame-graph export failed: " << flame_out << '\n';
      return 1;
    }
    std::cout << "[flame] wrote " << flame_out
              << " (collapsed-stack; render with flamegraph.pl)\n";
  }
  return 0;
}

int cmd_lifetime(const hal::RadioBackend& backend,
                 const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  const auto tx = energy::find_device(args[0]);
  const auto rx = energy::find_device(args[1]);
  if (!tx || !rx) {
    std::cerr << "unknown device; try `braidio_cli devices`\n";
    return 2;
  }
  core::LifetimeConfig cfg;
  cfg.distance_m = args.size() > 2 ? std::stod(args[2]) : 0.5;

  core::LifetimeSimulator sim(backend);
  const auto e1 = util::to_joules(util::WattHours(tx->battery_wh));
  const auto e2 = util::to_joules(util::WattHours(rx->battery_wh));
  const auto outcome = sim.braidio(e1, e2, cfg);

  util::TablePrinter out({"radio", "total bits", "duration", "plan"});
  out.add_row({"Braidio", util::format_scientific(outcome.bits, 4),
               util::format_fixed(outcome.seconds / 3600.0, 1) + " h",
               outcome.plan.summary()});
  const double bt = sim.bluetooth_bits(e1, e2, false);
  out.add_row({"Bluetooth", util::format_scientific(bt, 4),
               util::format_fixed(bt / 1e6 / 3600.0, 1) + " h", "-"});
  out.print(std::cout);
  std::cout << "gain: " << util::format_fixed(outcome.bits / bt, 2)
            << "x\n";
  return 0;
}

int cmd_matrix(const hal::RadioBackend& backend,
               const std::vector<std::string>& args) {
  core::LifetimeSimulator sim(backend);
  core::LifetimeConfig cfg;
  cfg.distance_m = args.empty() ? 0.5 : std::stod(args[0]);
  const auto& catalog = energy::device_catalog();
  std::vector<std::string> headers{"RX \\ TX"};
  for (const auto& d : catalog) headers.push_back(d.name.substr(0, 8));
  util::TablePrinter out(std::move(headers));
  for (const auto& rx : catalog) {
    std::vector<std::string> row{rx.name.substr(0, 8)};
    for (const auto& tx : catalog) {
      row.push_back(util::format_engineering(
          sim.gain_vs_bluetooth(tx, rx, cfg), 3));
    }
    out.add_row(std::move(row));
  }
  out.print(std::cout);
  return 0;
}

int cmd_ber(const hal::RadioBackend& backend,
            const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  const auto mode = parse_mode(args[0]);
  const auto rate = parse_rate(args[1]);
  if (!mode || !rate) return usage();
  if (backend.caps().find(*mode, *rate) == nullptr) {
    std::cerr << "backend '" << backend.name() << "' does not support "
              << hal::to_string(*mode) << "@" << hal::to_string(*rate)
              << '\n';
    return 1;
  }
  const hal::ChannelModel& channel = backend.channel();
  util::TablePrinter out({"distance [m]", "SNR [dB]", "BER"});
  for (double d = 0.25; d <= 6.01; d += 0.25) {
    out.add_row({util::format_fixed(d, 2),
                 util::format_fixed(channel.snr_db(*mode, *rate, d), 1),
                 util::format_scientific(channel.ber(*mode, *rate, d), 3)});
  }
  out.print(std::cout);
  const double range = channel.range_m(*mode, *rate);
  std::cout << "operating range (BER < "
            << channel.ber(*mode, *rate, range)
            << "): " << util::format_fixed(range, 2)
            << " m\n";
  return 0;
}

/// Replace a trailing ".json" with `ext`, or append `ext` when the stats
/// path has some other suffix — "run.json" -> "run.csv", "run" ->
/// "run.csv".
std::string stats_sibling(const std::string& path, const char* ext) {
  const std::string json_ext = ".json";
  if (path.size() > json_ext.size() &&
      path.compare(path.size() - json_ext.size(), json_ext.size(),
                   json_ext) == 0) {
    return path.substr(0, path.size() - json_ext.size()) + ext;
  }
  return path + ext;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  out.flush();
  if (!out) {
    std::cerr << "failed to write " << path << '\n';
    return false;
  }
  return true;
}

// Many-node discrete-event network run: build the topology, drain the
// scheduler, and report delivery + energy. Global --backend and --faults
// plug straight into the NetConfig.
int cmd_net(const hal::RadioBackend& backend,
            const std::vector<std::string>& args,
            const GlobalOptions& options) {
  net::NetConfig cfg;
  cfg.backend = &backend;
  if (options.faults) cfg.impairments = &*options.faults;
  std::string stats_out;
  for (const auto& arg : args) {
    if (arg.rfind("--topology=", 0) == 0) {
      const auto kind = net::parse_topology(arg.substr(11));
      if (!kind) {
        std::cerr << "bad --topology value: " << arg.substr(11)
                  << " (want star|grid|rgg)\n";
        return 2;
      }
      cfg.topology.kind = *kind;
    } else if (arg.rfind("--nodes=", 0) == 0) {
      cfg.topology.nodes = std::stoul(arg.substr(8));
    } else if (arg.rfind("--packets=", 0) == 0) {
      cfg.packets_per_node =
          static_cast<std::uint32_t>(std::stoul(arg.substr(10)));
    } else if (arg.rfind("--extent=", 0) == 0) {
      cfg.topology.extent_m = std::stod(arg.substr(9));
    } else if (arg.rfind("--range=", 0) == 0) {
      cfg.topology.link_range_m = std::stod(arg.substr(8));
    } else if (arg.rfind("--seed=", 0) == 0) {
      cfg.seed = std::stoull(arg.substr(7));
    } else if (arg.rfind("--mac=", 0) == 0) {
      try {
        cfg.mac = net::parse_mac(arg.substr(6));
      } catch (const std::invalid_argument&) {
        std::cerr << "bad --mac value: " << arg.substr(6)
                  << " (want csma|tdma)\n";
        return 2;
      }
    } else if (arg.rfind("--net-stats-out=", 0) == 0) {
      stats_out = arg.substr(16);
      if (stats_out.empty()) {
        std::cerr << "--net-stats-out needs a file path\n";
        return 2;
      }
      cfg.flight_recorder = true;
    } else if (arg.rfind("--stats-bucket=", 0) == 0) {
      cfg.stats_bucket_s = std::stod(arg.substr(15));
      if (!(cfg.stats_bucket_s > 0.0)) {
        std::cerr << "bad --stats-bucket value: " << arg.substr(15)
                  << " (want seconds > 0)\n";
        return 2;
      }
    } else {
      std::cerr << "unknown net flag: " << arg << '\n';
      return usage();
    }
  }

  net::NetworkSimulator sim(cfg);
  const auto stats = sim.run();

  util::TablePrinter out({"metric", "value"});
  out.add_row({"topology", net::to_string(cfg.topology.kind)});
  out.add_row({"mac", net::to_string(cfg.mac)});
  out.add_row({"nodes (tags + hub)",
               std::to_string(cfg.topology.nodes + 1)});
  out.add_row({"reachable", std::to_string(stats.reachable)});
  out.add_row({"planned uplinks", std::to_string(stats.planned)});
  out.add_row({"max hops", std::to_string(stats.max_hops)});
  out.add_row({"events", std::to_string(stats.events)});
  out.add_row({"virtual time",
               util::format_fixed(stats.elapsed_s, 3) + " s"});
  out.add_row({"generated", std::to_string(stats.generated)});
  out.add_row({"delivered", std::to_string(stats.delivered)});
  out.add_row({"forwarded", std::to_string(stats.forwarded)});
  out.add_row({"tx attempts", std::to_string(stats.tx_attempts)});
  out.add_row({"access failures", std::to_string(stats.csma_failures)});
  out.add_row({"arq drops", std::to_string(stats.arq_drops)});
  if (cfg.mac == net::MacKind::Tdma) {
    out.add_row({"tdma rounds", std::to_string(stats.mac.rounds)});
    out.add_row({"registrations", std::to_string(stats.mac.registrations)});
    out.add_row({"slots reclaimed",
                 std::to_string(stats.mac.slots_reclaimed)});
  }
  out.add_row({"battery deaths", std::to_string(stats.battery_deaths)});
  out.add_row({"hub energy",
               util::format_engineering(stats.hub_joules, 4) + "J"});
  out.add_row({"total energy",
               util::format_engineering(stats.total_joules, 4) + "J"});
  out.add_row({"goodput", util::format_engineering(
                              stats.bits_per_joule(), 4) + "bits/J"});
  out.print(std::cout);

  if (!stats_out.empty()) {
    const auto& record = sim.flight_record();
    if (!record.enabled) {
      std::cerr << "--net-stats-out: flight recorder unavailable "
                   "(built with BRAIDIO_OBS=OFF)\n";
      return 1;
    }
    const std::string csv_path = stats_sibling(stats_out, ".csv");
    const std::string sched_path = stats_sibling(stats_out, ".sched.json");
    if (!write_text_file(stats_out, record.to_json()) ||
        !write_text_file(csv_path, record.to_csv()) ||
        !write_text_file(sched_path, record.sched_chrome_counters())) {
      return 1;
    }
    std::cout << "net stats: " << stats_out << " (+ " << csv_path
              << ", " << sched_path << ")\n";
  }
  return 0;
}

int cmd_regimes(const hal::RadioBackend& backend) {
  core::RegimeMap map(backend);
  std::cout << "Regime A (carrier movable to either end): <= "
            << util::format_fixed(map.regime_a_limit_m(), 2) << " m\n"
            << "Regime B (receiver can shed its carrier): <= "
            << util::format_fixed(map.regime_b_limit_m(), 2) << " m\n"
            << "Regime C (active only) beyond that.\n";
  const auto region = efficiency_region(map, 0.3);
  std::cout << "dynamic range at 0.3 m: "
            << util::format_fixed(region.span_orders_of_magnitude(), 2)
            << " orders of magnitude\n";
  return 0;
}

int cmd_backends() {
  backends::register_all();
  util::TablePrinter out({"backend", "description"});
  for (const auto& name : hal::BackendRegistry::instance().names()) {
    out.add_row({name,
                 hal::BackendRegistry::instance().get(name).description()});
  }
  out.print(std::cout);
  return 0;
}

int cmd_devices() {
  util::TablePrinter out({"device", "battery [Wh]"});
  for (const auto& d : energy::device_catalog()) {
    out.add_row({d.name, util::format_fixed(d.battery_wh, 2)});
  }
  out.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  GlobalOptions options;
  if (!parse_global_flags(args, options)) return usage();
  if (args.empty()) return usage();
  const std::string cmd = args.front();
  args.erase(args.begin());
  if (!options.trace_out.empty()) {
    // The one place the ring is sized: the documented default
    // (kDefaultTraceRingEvents) or the explicit --trace-ring=<n> value.
    obs::Tracer::instance().set_lane_capacity(options.trace_ring);
    obs::Tracer::instance().set_enabled(true);
  }

  backends::register_all();
  if (!hal::BackendRegistry::instance().contains(options.backend)) {
    std::cerr << "unknown backend '" << options.backend
              << "'; try `braidio_cli backends`\n";
    return 2;
  }
  const hal::RadioBackend& backend =
      hal::BackendRegistry::instance().get(options.backend);

  int rc = 2;
  bool ran = true;
  try {
    if (cmd == "plan") rc = cmd_plan(backend, args);
    else if (cmd == "braid") rc = cmd_braid(backend, args, options);
    else if (cmd == "profile") rc = cmd_profile(backend, args, options);
    else if (cmd == "lifetime") rc = cmd_lifetime(backend, args);
    else if (cmd == "matrix") rc = cmd_matrix(backend, args);
    else if (cmd == "ber") rc = cmd_ber(backend, args);
    else if (cmd == "net") rc = cmd_net(backend, args, options);
    else if (cmd == "regimes") rc = cmd_regimes(backend);
    else if (cmd == "devices") rc = cmd_devices();
    else if (cmd == "backends") rc = cmd_backends();
    else ran = false;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    rc = 1;
  }
  if (!ran) return usage();

  if (options.metrics) {
    const auto snapshot = obs::global_metrics_snapshot();
    if (snapshot.empty()) {
      std::cout << "(no metrics recorded)\n";
    } else {
      snapshot.to_table().print(std::cout);
    }
  }
  if (!options.trace_out.empty() &&
      !sim::write_trace_json(options.trace_out, std::cout)) {
    rc = rc == 0 ? 1 : rc;
  }
  return rc;
}
