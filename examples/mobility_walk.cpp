// Mobility: a phone pushing navigation/media data to a smartwatch while
// the wearer walks around a room. Large-to-small transfers keep an
// offload option (the watch's passive receiver) all the way to ~5 m, so
// the braid survives every regime crossing.
//
// Ported onto the sim engine: a Scenario over independent random walks
// (one axis = walk replica, each seeded from its own child stream) runs on
// the thread pool, then the first walk's plan transitions are replayed in
// detail. Try `--threads N`, and `--trace-out=walk.json` for a Chrome
// trace timeline of the whole run (mode switches, dwells, energy posts).
#include <iostream>
#include <vector>

#include "core/mobility_sim.hpp"
#include "obs/obs.hpp"
#include "sim/run_report.hpp"
#include "sim/scenario.hpp"
#include "sim/sweep_runner.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace braidio;
  const std::string trace_out = sim::trace_out_from_cli(argc, argv);
  if (!trace_out.empty()) obs::Tracer::instance().set_enabled(true);

  sim::RunReport report(std::cout, "Example",
                        "Mobility walk: phone -> watch across regimes");

  core::PowerTable table;
  phy::LinkBudget budget;
  core::MobilitySimulator mobility(table, budget);

  core::MobilitySimConfig cfg;
  cfg.e1 = util::WattHours(6.55);  // iPhone 6S transmits
  cfg.e2 = util::WattHours(0.78);  // Apple Watch receives
  cfg.replan_interval = util::Seconds(1.0);

  auto walk_trace = [](std::uint64_t seed) {
    // 2 minutes of wandering between arm's length and across the room.
    return core::MobilityTrace::random_walk(
        0.3, 5.5, /*speed=*/1.4, util::Seconds(/*duration=*/120.0), seed);
  };

  const std::size_t walks = 8;
  sim::Scenario scenario(
      "mobility_walks", {sim::Axis::indexed("walk", walks)},
      {"MB moved", "replans", "plan changes", "vs BT throughput",
       "watch life/bit vs BT"},
      [&](sim::SweepPoint& p) {
        const auto trace = walk_trace(p.seed());
        const auto outcome = mobility.run(trace, cfg);
        sim::RunRecord record;
        record.cells = {
            util::format_fixed(outcome.total_bits / 8e6, 1),
            std::to_string(outcome.replans),
            std::to_string(outcome.plan_changes),
            util::format_fixed(outcome.throughput_ratio_vs_bluetooth(), 2) +
                "x",
            util::format_fixed(outcome.lifetime_gain_vs_bluetooth(2), 1) +
                "x"};
        record.numbers = {outcome.total_bits};
        return record;
      });

  sim::SweepOptions options;
  options.threads = sim::threads_from_cli(argc, argv);
  const auto out = sim::SweepRunner(options).run(scenario);
  report.table(out);
  report.metrics(out);
  report.export_csv("mobility_walks", out);

  // Replay walk 0 serially for the plan-transition detail table.
  const std::uint64_t walk0_seed =
      util::Rng::stream_seed(options.seed, 0);
  const auto trace = walk_trace(walk0_seed);
  const auto outcome = mobility.run(trace, cfg);

  util::TablePrinter detail({"t [s]", "d [m]", "regime", "plan"});
  std::string last;
  for (const auto& s : outcome.samples) {
    if (s.plan == last) continue;  // print only plan transitions
    last = s.plan;
    detail.add_row({util::format_fixed(s.time_s, 0),
                    util::format_fixed(s.distance_m, 2),
                    to_string(s.regime), s.plan});
  }
  report.note("walk 0 plan transitions:");
  report.table(detail);

  report.note("phone spent " +
              util::format_fixed(
                  outcome.samples.back().device1_joules_used, 1) +
              " J, watch " +
              util::format_fixed(
                  outcome.samples.back().device2_joules_used, 1) +
              " J on walk 0; braids reform at every regime crossing.");

  // The walk-0 replay ran outside the sweep, so its posts landed in the
  // process-global registry.
  report.metrics(obs::global_metrics_snapshot());
  report.export_trace("mobility_walks");
  if (!trace_out.empty() &&
      !sim::write_trace_json(trace_out, report.stream())) {
    return 1;
  }
  return 0;
}
