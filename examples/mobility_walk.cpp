// Mobility: a phone pushing navigation/media data to a smartwatch while
// the wearer walks around a room. Large-to-small transfers keep an
// offload option (the watch's passive receiver) all the way to ~5 m, so
// the braid survives every regime crossing. Shows the offload layer
// living through the dynamics: braids reform, bitrates step, and the
// link rides out out-of-range gaps.
#include <iostream>

#include "core/mobility_sim.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace braidio;

  core::PowerTable table;
  phy::LinkBudget budget;
  core::MobilitySimulator sim(table, budget);

  // 2 minutes of wandering between arm's length and across the room.
  const auto trace =
      core::MobilityTrace::random_walk(0.3, 5.5, /*speed=*/1.4,
                                       /*duration=*/120.0, /*seed=*/42);
  core::MobilitySimConfig cfg;
  cfg.e1_wh = 6.55;  // iPhone 6S transmits
  cfg.e2_wh = 0.78;  // Apple Watch receives
  cfg.replan_interval_s = 1.0;

  const auto outcome = sim.run(trace, cfg);

  util::TablePrinter out({"t [s]", "d [m]", "regime", "plan"});
  std::string last;
  for (const auto& s : outcome.samples) {
    if (s.plan == last) continue;  // print only plan transitions
    last = s.plan;
    out.add_row({util::format_fixed(s.time_s, 0),
                 util::format_fixed(s.distance_m, 2),
                 to_string(s.regime), s.plan});
  }
  out.print(std::cout);

  std::cout << "\nover " << trace.duration_s() << " s: "
            << outcome.total_bits / 8e6 << " MB moved in "
            << outcome.replans << " planning intervals ("
            << outcome.plan_changes << " plan changes)\n"
            << "phone spent "
            << outcome.samples.back().device1_joules_used << " J, watch "
            << outcome.samples.back().device2_joules_used << " J\n"
            << "throughput vs Bluetooth on the same walk: "
            << util::format_fixed(outcome.throughput_ratio_vs_bluetooth(), 2)
            << "x; watch battery life per bit vs Bluetooth: "
            << util::format_fixed(outcome.lifetime_gain_vs_bluetooth(2), 1)
            << "x\n";
  return 0;
}
