// Quickstart: the smallest end-to-end Braidio program.
//
// Pick a radio backend behind the HAL (default: the calibrated braidio
// prototype), build two radios with different batteries, let the
// carrier-offload layer plan a braid, run a packetized transfer, and look
// at where the energy went.
//
//   quickstart [--backend=NAME]   (see `braidio_cli backends`)
#include <iostream>
#include <string>

#include "backends/backends.hpp"
#include "core/braided_link.hpp"
#include "core/lifetime_sim.hpp"
#include "obs/obs.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace braidio;

  // 1. The radio backend: capability lattice + channel physics + radios.
  std::string backend_name = backends::kBraidio;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--backend=", 0) == 0) backend_name = arg.substr(10);
  }
  backends::register_all();
  if (!hal::BackendRegistry::instance().contains(backend_name)) {
    std::cerr << "unknown backend '" << backend_name << "'\n";
    return 2;
  }
  const hal::RadioBackend& backend =
      hal::BackendRegistry::instance().get(backend_name);
  core::RegimeMap regimes(backend);
  std::cout << "Backend: " << backend.name() << " — "
            << backend.description() << '\n';

  // 2. Two devices 0.5 m apart: a phone transfers a file to a smartwatch.
  const auto phone =
      backend.create_radio("phone", /*address=*/1, util::WattHours(6.55));
  const auto watch =
      backend.create_radio("watch", /*address=*/2, util::WattHours(0.78));

  // 3. What does the offload plan look like before we move any data?
  core::LifetimeSimulator sim(backend);
  core::LifetimeConfig cfg;
  cfg.distance_m = 0.5;
  const auto outcome =
      sim.braidio(util::Joules(phone->battery().remaining_joules()),
                  util::Joules(watch->battery().remaining_joules()), cfg);
  std::cout << "Offload plan: " << outcome.plan.summary() << '\n'
            << "  phone drains " << outcome.plan.tx_joules_per_bit * 1e9
            << " nJ/bit, watch " << outcome.plan.rx_joules_per_bit * 1e9
            << " nJ/bit\n"
            << "  bits before a battery dies: " << outcome.bits << " ("
            << outcome.bits /
                   sim.bluetooth_bits(
                       util::Joules(phone->battery().remaining_joules()),
                       util::Joules(watch->battery().remaining_joules()),
                       false)
            << "x Bluetooth)\n\n";

  // 4. Actually run a packetized session (probes, ARQ, mode switching).
  core::BraidedLinkConfig link_cfg;
  link_cfg.distance_m = 0.5;
  link_cfg.payload_bytes = 64;
  core::BraidedLink link(*phone, *watch, regimes, link_cfg);
  const auto stats = link.run(/*packets=*/2000);

  std::cout << "Session: " << stats.data_packets_delivered << "/"
            << stats.data_packets_offered << " packets in "
            << stats.elapsed_s << " s over:\n";
  for (const auto& [mode, airtime] : stats.mode_airtime_s) {
    std::cout << "  " << mode << ": " << airtime * 1e3 << " ms\n";
  }
  std::cout << "\nphone " << phone->ledger().report() << "\nwatch "
            << watch->ledger().report();

  // 5. Everything above also streamed into the obs metrics registry.
  const auto metrics = obs::global_metrics_snapshot();
  if (!metrics.empty()) {
    std::cout << "\nobs metrics for this run:\n";
    metrics.to_table().print(std::cout);
  }
  return 0;
}
